// Package selftrace closes LagAlyzer's observability loop: it exports
// the pipeline's own obs span forest as a LiLa v2 trace, so the tool
// can analyze its own execution with the very machinery the paper
// applies to Swing applications ("profile the profiler").
//
// The mapping from spans to LiLa's thread/interval model:
//
//	main goroutine's root spans → dispatch intervals on the GUI
//	  thread ("main", id 1): each top-level pipeline phase becomes
//	  one episode
//	pool workers / concurrent spans → daemon background threads
//	  ("worker-N", ids 2+): a span that overlaps its siblings is
//	  displaced to the first free worker lane, where it roots its own
//	  episode (LiLa's multi-EDT case)
//	nested spans → listener intervals inside their parent
//	phase alloc deltas (PhaseSpan) → call-stack samples whose leaf
//	  frame carries the bytes/objects allocated
//	lane activity → periodic samples: runnable with the open interval
//	  chain as the stack while a lane is busy, waiting otherwise
//
// Span timestamps are wall-clock offsets from the trace epoch, so the
// emitted trace varies run to run; what never varies is the analysis
// itself — the bridge only reads a finished *obs.Trace after the run's
// outputs are complete, so enabling self-profiling cannot perturb
// results (pinned by an instrumented-vs-plain equality test in package
// report).
package selftrace

import (
	"container/heap"
	"fmt"
	"sort"

	"lagalyzer/internal/lila"
	"lagalyzer/internal/obs"
	"lagalyzer/internal/trace"
)

// Options name the emitted session.
type Options struct {
	// App is the header's application name, conventionally the tool
	// that ran the pipeline ("lagreport", "lagd-study", ...). Empty
	// takes "lagalyzer".
	App string
	// SessionID distinguishes multiple self-traces of the same app.
	SessionID int
}

// maxTicks caps the periodic-sample count; the sampling period is
// stretched on long runs so the self-trace stays small.
const maxTicks = 2000

// defaultSamplePeriod mirrors LiLa's ~10ms stack sampler.
const defaultSamplePeriod = 10 * trace.Millisecond

// guiThread is the thread id of the synthetic GUI ("main") lane.
const guiThread trace.ThreadID = 1

// iv is one placed interval on a lane: a span whose times have been
// committed to the lane's properly nested timeline.
type iv struct {
	name, class string
	start, end  trace.Time
	kids        []*iv
	measured    bool
	allocBytes  uint64
	allocObjs   uint64
}

// lane is one synthetic thread of the self-trace.
type lane struct {
	id        trace.ThreadID
	name      string
	daemon    bool
	busyUntil trace.Time
	top       []*iv
}

// node is one exported span with its children resolved and sorted.
type node struct {
	sp   obs.SpanExport
	kids []*node
}

// job is one pending subtree placement; the heap orders jobs by start
// time (span id tie-break) so lanes fill deterministically.
type job struct {
	n      *node
	gui    bool // an original root may claim the GUI lane
	start  trace.Time
	spanID int
}

type jobHeap []job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].start != h[j].start {
		return h[i].start < h[j].start
	}
	return h[i].spanID < h[j].spanID
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(job)) }
func (h *jobHeap) Pop() any     { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }

// Build converts the trace's span forest into a LiLa header and a
// valid, time-ordered record stream. A nil or empty trace yields a
// minimal zero-length session (header, main thread, end record) so
// callers can always write a well-formed file.
func Build(t *obs.Trace, o Options) (lila.Header, []*lila.Record, error) {
	app := o.App
	if app == "" {
		app = "lagalyzer"
	}
	spans := t.Export()

	// Resolve the forest: children sorted by (start, id) so the
	// nesting walk sees them in timeline order.
	nodes := make([]*node, len(spans))
	for i := range spans {
		nodes[i] = &node{sp: spans[i]}
	}
	var roots []*node
	for i := range spans {
		if p := spans[i].Parent; p >= 0 {
			nodes[p].kids = append(nodes[p].kids, nodes[i])
		} else {
			roots = append(roots, nodes[i])
		}
	}
	for _, n := range nodes {
		sortNodes(n.kids)
	}
	sortNodes(roots)

	// Place every subtree on a lane, earliest start first. Original
	// roots may claim the GUI lane; displaced (overlapping) spans go
	// to daemon worker lanes only.
	lanes := []*lane{{id: guiThread, name: "main"}}
	pending := make(jobHeap, 0, len(roots))
	for _, r := range roots {
		pending = append(pending, newJob(r, true))
	}
	heap.Init(&pending)
	for pending.Len() > 0 {
		j := heap.Pop(&pending).(job)
		l := pickLane(&lanes, j)
		v := placeSubtree(j.n, &pending)
		l.busyUntil = v.end
		l.top = append(l.top, v)
	}

	end := trace.Time(0)
	for _, l := range lanes {
		if l.busyUntil > end {
			end = l.busyUntil
		}
	}
	period := samplePeriod(end)
	h := lila.Header{
		App:          app,
		SessionID:    o.SessionID,
		GUIThread:    guiThread,
		SamplePeriod: period,
	}

	var recs []*lila.Record
	for _, l := range lanes {
		recs = append(recs, &lila.Record{Type: lila.RecThread, Thread: l.id, Name: l.name, Daemon: l.daemon})
	}
	n := len(recs)
	for _, l := range lanes {
		for _, v := range l.top {
			recs = appendIntervalRecords(recs, l.id, v, true)
		}
	}
	recs = appendPeriodicSamples(recs, lanes, end, period)
	// Stable sort by time: per-lane record order (call before nested
	// call before return, returns before the next touching call) was
	// emitted sequentially per lane, so it survives the merge.
	body := recs[n:]
	sort.SliceStable(body, func(i, j int) bool { return body[i].Time < body[j].Time })
	recs = append(recs, &lila.Record{Type: lila.RecEnd, Time: end})

	for _, r := range recs {
		if err := r.Validate(); err != nil {
			return lila.Header{}, nil, fmt.Errorf("selftrace: %w", err)
		}
	}
	return h, recs, nil
}

// Encode renders the trace as LiLa v2 file bytes.
func Encode(t *obs.Trace, o Options) ([]byte, error) {
	h, recs, err := Build(t, o)
	if err != nil {
		return nil, err
	}
	return lila.EncodeV2(h, recs)
}

// WriteFile writes the v2 self-trace atomically (tmp+rename), the same
// crash-safety contract as every other artifact the tools emit.
func WriteFile(path string, t *obs.Trace, o Options) error {
	data, err := Encode(t, o)
	if err != nil {
		return err
	}
	return obs.WriteFileAtomic(path, data, 0o644)
}

func sortNodes(ns []*node) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].sp.Start != ns[j].sp.Start {
			return ns[i].sp.Start < ns[j].sp.Start
		}
		return ns[i].sp.ID < ns[j].sp.ID
	})
}

func newJob(n *node, gui bool) job {
	return job{n: n, gui: gui, start: spanStart(n.sp), spanID: n.sp.ID}
}

func spanStart(sp obs.SpanExport) trace.Time {
	if sp.Start < 0 {
		return 0
	}
	return trace.Time(sp.Start)
}

func spanEnd(sp obs.SpanExport) trace.Time {
	s := spanStart(sp)
	if sp.Dur <= 0 {
		return s
	}
	return s.Add(trace.Dur(sp.Dur))
}

// pickLane finds the first lane free at the job's start time: the GUI
// lane for eligible roots, then existing worker lanes in creation
// order, else a fresh daemon worker lane.
func pickLane(lanes *[]*lane, j job) *lane {
	for i, l := range *lanes {
		if i == 0 && !j.gui {
			continue
		}
		if l.busyUntil <= j.start {
			return l
		}
	}
	w := len(*lanes) // worker-1 is the second lane
	l := &lane{id: trace.ThreadID(w + 1), name: fmt.Sprintf("worker-%d", w), daemon: true}
	*lanes = append(*lanes, l)
	return l
}

// placeSubtree commits n's span to an interval and nests every child
// that fits the lane timeline (starts at or after the previous sibling
// ended, ends within the parent). Children that overlap a sibling or
// outlive the parent — concurrent work on other goroutines — are
// displaced onto the pending heap to root their own episode on a
// worker lane.
func placeSubtree(n *node, pending *jobHeap) *iv {
	v := &iv{
		name:       n.sp.Name,
		class:      spanClass(n.sp),
		start:      spanStart(n.sp),
		end:        spanEnd(n.sp),
		measured:   n.sp.Measured,
		allocBytes: n.sp.AllocBytes,
		allocObjs:  n.sp.AllocObjs,
	}
	cursor := v.start
	for _, c := range n.kids {
		cs, ce := spanStart(c.sp), spanEnd(c.sp)
		if cs >= cursor && ce <= v.end {
			v.kids = append(v.kids, placeSubtree(c, pending))
			cursor = ce
			continue
		}
		heap.Push(pending, newJob(c, false))
	}
	return v
}

// spanClass derives the synthetic class name from the span's root path
// segment: every interval of the "study/..." subtree shares the class
// "lagalyzer.study", so patterns group by pipeline phase family.
func spanClass(sp obs.SpanExport) string {
	root := sp.Path
	for i := 0; i < len(root); i++ {
		if root[i] == '/' {
			root = root[:i]
			break
		}
	}
	return "lagalyzer." + root
}

// appendIntervalRecords emits the call/children/return walk of one
// placed interval. Top-level intervals are dispatches (episode roots);
// nested intervals are listeners. Measured intervals additionally emit
// an alloc-delta sample at their end time.
func appendIntervalRecords(recs []*lila.Record, th trace.ThreadID, v *iv, top bool) []*lila.Record {
	kind := trace.KindListener
	if top {
		kind = trace.KindDispatch
	}
	recs = append(recs, &lila.Record{
		Type: lila.RecCall, Time: v.start, Thread: th,
		Kind: kind, Class: v.class, Method: v.name,
	})
	for _, c := range v.kids {
		recs = appendIntervalRecords(recs, th, c, false)
	}
	if v.measured {
		recs = append(recs, &lila.Record{
			Type: lila.RecSample, Time: v.end, Thread: th, State: trace.StateRunnable,
			Stack: []trace.Frame{
				{Class: "lagalyzer.alloc", Method: fmt.Sprintf("%s +%dB/+%dobj", v.name, v.allocBytes, v.allocObjs)},
				{Class: v.class, Method: v.name},
			},
		})
	}
	return append(recs, &lila.Record{Type: lila.RecReturn, Time: v.end, Thread: th})
}

// samplePeriod stretches the nominal 10ms period so a session emits at
// most maxTicks periodic sample ticks.
func samplePeriod(end trace.Time) trace.Dur {
	p := defaultSamplePeriod
	if minP := trace.Dur(int64(end) / maxTicks); minP > p {
		p = minP
	}
	return p
}

// appendPeriodicSamples walks the session timeline at the sampling
// period and records each lane's state: runnable with the open
// interval chain (leaf first) while inside an episode, waiting with an
// empty stack while idle — LiLa's all-threads stack sampler applied to
// the pipeline's own lanes.
func appendPeriodicSamples(recs []*lila.Record, lanes []*lane, end trace.Time, period trace.Dur) []*lila.Record {
	if end <= 0 {
		return recs
	}
	cursors := make([]int, len(lanes))
	for t := trace.Time(0).Add(period); t < end; t = t.Add(period) {
		for li, l := range lanes {
			// Advance past episodes that ended before t.
			for cursors[li] < len(l.top) && l.top[cursors[li]].end <= t {
				cursors[li]++
			}
			var stack []trace.Frame
			state := trace.StateWaiting
			if cursors[li] < len(l.top) && l.top[cursors[li]].start <= t {
				state = trace.StateRunnable
				stack = openChain(l.top[cursors[li]], t)
			}
			recs = append(recs, &lila.Record{
				Type: lila.RecSample, Time: t, Thread: l.id, State: state, Stack: stack,
			})
		}
	}
	return recs
}

// openChain returns the frames of the intervals open at time t inside
// v, leaf first.
func openChain(v *iv, t trace.Time) []trace.Frame {
	var chain []trace.Frame
	for v != nil {
		chain = append(chain, trace.Frame{Class: v.class, Method: v.name})
		next := (*iv)(nil)
		for _, c := range v.kids {
			if c.start <= t && t < c.end {
				next = c
				break
			}
		}
		v = next
	}
	// Reverse: collected root→leaf, samples are leaf first.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}
