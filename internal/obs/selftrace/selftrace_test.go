package selftrace

import (
	"bytes"
	"context"
	"os"
	"sync"
	"testing"
	"time"

	"lagalyzer/internal/obs"
	"lagalyzer/internal/treebuild"
)

// record a realistic span forest: a study root with a measured phase,
// and overlapping per-worker spans that must be displaced to worker
// lanes.
func recordTrace(t *testing.T) *obs.Trace {
	t.Helper()
	tr := obs.NewTrace()
	ctx := obs.WithTrace(context.Background(), tr)

	ctx1, endStudy := obs.Span(ctx, "study")
	ctx2, endPhase := obs.PhaseSpan(ctx1, "load")
	time.Sleep(2 * time.Millisecond)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, end := obs.Span(obs.WithWorker(ctx2, w), "decode")
			time.Sleep(12 * time.Millisecond)
			end()
		}(w)
	}
	wg.Wait()
	endPhase()
	_, endMerge := obs.Span(ctx1, "merge")
	time.Sleep(time.Millisecond)
	endMerge()
	endStudy()
	return tr
}

func TestBuildRoundTrip(t *testing.T) {
	tr := recordTrace(t)
	h, recs, err := Build(tr, Options{App: "lagreport", SessionID: 7})
	if err != nil {
		t.Fatal(err)
	}
	if h.App != "lagreport" || h.SessionID != 7 || h.GUIThread != guiThread {
		t.Errorf("header = %+v", h)
	}
	s, diag, err := treebuild.BuildRecords(h, recs)
	if err != nil {
		t.Fatalf("treebuild rejected self-trace: %v", err)
	}
	if diag.SkippedRecords != 0 || diag.OrphanTopLevel != 0 {
		t.Errorf("diagnostics not clean: %+v", diag)
	}
	if len(s.Episodes) == 0 {
		t.Fatal("self-trace produced no episodes")
	}
	if len(s.Threads) < 2 {
		t.Errorf("threads = %d, want main + at least one worker (3 overlapping spans)", len(s.Threads))
	}
	if len(s.Ticks) == 0 {
		t.Error("no periodic samples in a >10ms session")
	}
	// The measured phase must surface as an alloc-delta sample.
	foundAlloc := false
	for _, tk := range s.Ticks {
		for _, th := range tk.Threads {
			if len(th.Stack) > 0 && th.Stack[0].Class == "lagalyzer.alloc" {
				foundAlloc = true
			}
		}
	}
	if !foundAlloc {
		t.Error("no alloc-delta sample for the measured phase")
	}
	// Displaced worker spans must root their own episodes off the GUI
	// thread (the multi-EDT mapping).
	offGUI := 0
	for _, e := range s.Episodes {
		if e.Thread != h.GUIThread {
			offGUI++
		}
	}
	if offGUI == 0 {
		t.Error("overlapping spans were not displaced to worker lanes")
	}
}

func TestEncodeIsValidV2(t *testing.T) {
	tr := recordTrace(t)
	data, err := Encode(tr, Options{App: "lagreport"})
	if err != nil {
		t.Fatal(err)
	}
	s, err := treebuild.ReadSession(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("v2 decode of self-trace failed: %v", err)
	}
	if len(s.Episodes) == 0 {
		t.Fatal("decoded self-trace has no episodes")
	}
	if s.GUIThread != guiThread {
		t.Errorf("GUI thread = %d, want %d", s.GUIThread, guiThread)
	}
}

func TestEmptyTraceStillValid(t *testing.T) {
	for _, tr := range []*obs.Trace{nil, obs.NewTrace()} {
		h, recs, err := Build(tr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if h.App != "lagalyzer" {
			t.Errorf("default app = %q", h.App)
		}
		s, _, err := treebuild.BuildRecords(h, recs)
		if err != nil {
			t.Fatalf("empty self-trace invalid: %v", err)
		}
		if len(s.Episodes) != 0 || len(s.Threads) != 1 {
			t.Errorf("episodes=%d threads=%d, want 0/1", len(s.Episodes), len(s.Threads))
		}
	}
}

func TestWriteFile(t *testing.T) {
	tr := recordTrace(t)
	path := t.TempDir() + "/self.lila"
	if err := WriteFile(path, tr, Options{App: "x"}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s, err := treebuild.ReadSession(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Episodes) == 0 {
		t.Error("file round trip lost episodes")
	}
}
