package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("episodes_total", "episodes analyzed")
	c.Add(40)
	c.Inc()
	c.Inc()
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if again := reg.NewCounter("episodes_total", ""); again != c {
		t.Error("re-registering a counter must return the same instance")
	}

	g := reg.NewGauge("workers", "")
	g.Set(8)
	g.Add(-3)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}

	snap := reg.Snapshot()
	if snap.Counters["episodes_total"] != 42 || snap.Gauges["workers"] != 5 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("wait", "", []time.Duration{time.Millisecond, time.Second})
	h.Observe(100 * time.Microsecond) // bucket 0 (≤1ms)
	h.Observe(5 * time.Millisecond)   // bucket 1 (≤1s)
	h.Observe(2 * time.Second)        // bucket 2 (+Inf)
	h.Observe(time.Millisecond)       // boundary lands in bucket 0
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	hs := reg.Snapshot().Histograms["wait"]
	wantCum := []int64{2, 3, 4}
	for i, b := range hs.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %d (le %s) = %d, want %d", i, b.UpperBound, b.Count, wantCum[i])
		}
	}
	if hs.Buckets[2].UpperBound != "+Inf" {
		t.Errorf("last bound = %q, want +Inf", hs.Buckets[2].UpperBound)
	}
	if got := time.Duration(hs.SumNs); got != 2*time.Second+6*time.Millisecond+100*time.Microsecond {
		t.Errorf("sum = %v", got)
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("b", "").Add(2)
	reg.NewCounter("a", "").Add(1)
	reg.NewGauge("z", "").Set(3)
	j1, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := json.Marshal(reg.Snapshot())
	if string(j1) != string(j2) {
		t.Errorf("snapshot JSON not deterministic:\n%s\n%s", j1, j2)
	}
	txt := reg.Snapshot().Format()
	if !strings.Contains(txt, "counter a 1\ncounter b 2") {
		t.Errorf("text snapshot not sorted:\n%s", txt)
	}
}

func TestSpanNestingAndSummary(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)

	ctx1, endStudy := Span(ctx, "study")
	ctx2, endApp := Span(ctx1, "app")
	_, endClassify := Span(WithWorker(ctx2, 3), "classify")
	endClassify()
	_, endClassify2 := Span(WithWorker(ctx2, 1), "classify")
	endClassify2()
	endApp()
	endStudy()

	rows := tr.Summary()
	var paths []string
	for _, r := range rows {
		paths = append(paths, r.Path)
	}
	want := []string{"study", "study/app", "study/app/classify", "study/app/classify"}
	if len(rows) != 4 {
		t.Fatalf("rows = %v, want 4 rows %v", paths, want)
	}
	for i, p := range want {
		if paths[i] != p {
			t.Errorf("row %d path = %q, want %q", i, paths[i], p)
		}
	}
	// Worker attribution sorts deterministically within a path.
	if rows[2].Worker != 1 || rows[3].Worker != 3 {
		t.Errorf("worker order = %d,%d, want 1,3", rows[2].Worker, rows[3].Worker)
	}
	txt := tr.Format()
	for _, wantSub := range []string{"study", "classify", "worker=3"} {
		if !strings.Contains(txt, wantSub) {
			t.Errorf("Format() missing %q:\n%s", wantSub, txt)
		}
	}
}

func TestSpanConcurrentSafe(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wctx := WithWorker(ctx, w)
			for i := 0; i < 100; i++ {
				_, end := Span(wctx, "chunk")
				end()
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, r := range tr.Summary() {
		total += r.Count
	}
	if total != 800 {
		t.Errorf("recorded %d spans, want 800", total)
	}
}

func TestPhaseSpanAllocs(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	_, end := PhaseSpan(ctx, "build")
	sink = make([]byte, 1<<20)
	end()
	rows := tr.Summary()
	if len(rows) != 1 || rows[0].AllocBytes < 1<<20 {
		t.Errorf("alloc delta not captured: %+v", rows)
	}
}

var sink []byte

// TestDisabledPathDoesNotAllocate is the overhead budget guard: with
// no trace installed, the hot-path calls (Span, WithWorker, counter
// and histogram updates) must not allocate at all.
func TestDisabledPathDoesNotAllocate(t *testing.T) {
	ctx := context.Background()
	reg := NewRegistry()
	c := reg.NewCounter("hot", "")
	h := reg.NewHistogram("hoth", "", nil)

	cases := []struct {
		name string
		fn   func()
	}{
		{"Span", func() {
			_, end := Span(ctx, "classify")
			end()
		}},
		{"WithWorker", func() { WithWorker(ctx, 3) }},
		{"Counter.Add", func() { c.Add(1) }},
		{"Histogram.Observe", func() { h.Observe(time.Millisecond) }},
		{"TraceFrom", func() { _ = TraceFrom(ctx) }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(1000, tc.fn); n != 0 {
			t.Errorf("%s allocates %.1f times per call on the disabled path, want 0", tc.name, n)
		}
	}
}

func TestCountingReader(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("bytes", "")
	src := strings.Repeat("x", 10_000)
	cr := NewCountingReader(strings.NewReader(src), c)
	data, err := io.ReadAll(cr)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Bytes() != int64(len(src)) || int64(len(data)) != cr.Bytes() {
		t.Errorf("counted %d bytes, want %d", cr.Bytes(), len(src))
	}
	if c.Value() != int64(len(src)) {
		t.Errorf("mirror counter = %d, want %d", c.Value(), len(src))
	}
}

func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("served", "").Add(7)
	s, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}

	metrics := get("/metrics")
	var vars struct {
		GoVersion string `json:"go_version"`
		Metrics   struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(metrics), &vars); err != nil {
		t.Fatalf("/metrics not JSON: %v\n%s", err, metrics)
	}
	if vars.GoVersion == "" || vars.Metrics.Counters["served"] != 7 {
		t.Errorf("/metrics payload: %s", metrics)
	}
	if txt := get("/metrics.txt"); !strings.Contains(txt, "counter served 7") {
		t.Errorf("/metrics.txt payload: %s", txt)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Errorf("pprof index: %.200s", idx)
	}
}

func TestProfilerWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	p := &Profiler{
		CPUProfile: filepath.Join(dir, "cpu.out"),
		MemProfile: filepath.Join(dir, "mem.out"),
		TracePath:  filepath.Join(dir, "trace.out"),
	}
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so the profiles are non-trivial.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i
	}
	sink = make([]byte, 1<<16)
	_ = x
	stop()
	for _, name := range []string{"cpu.out", "mem.out", "trace.out"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil || fi.Size() == 0 {
			t.Errorf("%s missing or empty: %v", name, err)
		}
	}
}

func TestRunMeta(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	_, end := Span(ctx, "study")
	end()

	reg := NewRegistry()
	reg.NewCounter("episodes", "").Add(99)

	m := NewRunMeta("lagreport")
	m.Flags["seed"] = "42"
	m.Finish(tr, reg)
	path := filepath.Join(t.TempDir(), "runmeta.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back RunMeta
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("runmeta.json not JSON: %v", err)
	}
	if back.Tool != "lagreport" || back.GOMAXPROCS < 1 || back.Flags["seed"] != "42" {
		t.Errorf("runmeta round-trip: %+v", back)
	}
	if len(back.Phases) != 1 || back.Phases[0].Path != "study" {
		t.Errorf("phases = %+v", back.Phases)
	}
	if back.Metrics.Counters["episodes"] != 99 {
		t.Errorf("metrics snapshot = %+v", back.Metrics)
	}
}
