package intern

import (
	"fmt"
	"sync"
	"testing"
	"unsafe"
)

// TestBytesAndStringAgree: both entry points must canonicalize onto
// the same backing string, byte-for-byte and pointer-for-pointer.
func TestBytesAndStringAgree(t *testing.T) {
	a := String("lagalyzer.intern.TestSymbol#method")
	b := Bytes([]byte("lagalyzer.intern.TestSymbol#method"))
	if a != b {
		t.Fatalf("String=%q Bytes=%q", a, b)
	}
	if unsafe.StringData(a) != unsafe.StringData(b) {
		t.Error("String and Bytes returned different backing strings for equal content")
	}
	if Bytes(nil) != "" || String("") != "" {
		t.Error("empty inputs must intern to the empty string")
	}
}

// TestConcurrentInternCanonical hammers the interner from many
// goroutines over an overlapping word set (run under -race). Every
// goroutine must observe the same canonical backing string per word:
// a racy double-insert would hand different callers different
// pointers, silently defeating the sharing the decoders rely on.
func TestConcurrentInternCanonical(t *testing.T) {
	const goroutines = 16
	const words = 200
	keys := make([]string, words)
	for i := range keys {
		// Mix lengths and shard targets.
		keys[i] = fmt.Sprintf("com.example.pkg%d.Class%d#method%d", i%7, i, i%13)
	}

	results := make([][]string, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		results[g] = make([]string, words)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, k := range keys {
				if g%2 == 0 {
					results[g][i] = Bytes([]byte(k))
				} else {
					results[g][i] = String(string([]byte(k)))
				}
			}
		}(g)
	}
	wg.Wait()

	for g := 1; g < goroutines; g++ {
		for i := range keys {
			if results[g][i] != keys[i] {
				t.Fatalf("goroutine %d interned %q as %q", g, keys[i], results[g][i])
			}
			if unsafe.StringData(results[g][i]) != unsafe.StringData(results[0][i]) {
				t.Fatalf("goroutine %d got a non-canonical backing for %q", g, keys[i])
			}
		}
	}
}

// TestInternHitAllocFree pins the hot-path contract: once a symbol is
// in the table, re-interning it — from a []byte or a string — costs
// zero allocations. The decoders lean on this for every string-table
// reference after the first.
func TestInternHitAllocFree(t *testing.T) {
	b := []byte("com.example.warm.Key#value")
	Bytes(b)
	if n := testing.AllocsPerRun(200, func() { Bytes(b) }); n != 0 {
		t.Errorf("Bytes hit allocates %v per call, want 0", n)
	}
	s := "com.example.warm.Key2#value"
	String(s)
	if n := testing.AllocsPerRun(200, func() { String(s) }); n != 0 {
		t.Errorf("String hit allocates %v per call, want 0", n)
	}
}
