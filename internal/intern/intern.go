// Package intern provides a process-wide concurrent string interner
// for the trace ingestion path.
//
// LiLa traces are symbol-heavy: every paint call names the same few
// classes, and a study directory holds many sessions of the same
// application, so the same fully qualified class and method names
// recur millions of times. The decoders intern each string-table
// entry (binary format) or token (text format) exactly once, after
// which every session in the process shares one backing string per
// distinct symbol — the in-memory cost of symbols becomes O(distinct
// names), not O(records), and later string comparisons in the
// analysis engine tend to short-circuit on identical data pointers.
//
// The interner is sharded to stay off the contention path when
// LoadTraceDir decodes files on a worker per core: a lookup takes one
// FNV hash and one RLock on 1/64th of the table. Hits are
// allocation-free, including for []byte keys (the compiler elides the
// string conversion in map lookups).
package intern

import "sync"

// shardCount trades map size against lock contention; 64 shards keep
// a GOMAXPROCS-sized decode pool essentially uncontended.
const shardCount = 64

type shard struct {
	mu sync.RWMutex
	m  map[string]string
}

var shards [shardCount]shard

func init() {
	for i := range shards {
		shards[i].m = make(map[string]string)
	}
}

// fnv1a hashes b with 64-bit FNV-1a (inlined to keep Bytes
// allocation-free on the hit path).
func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

func fnv1aString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Bytes returns the canonical interned string equal to b. A hit costs
// no allocation; a miss allocates the one string that all future
// callers will share.
func Bytes(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	sh := &shards[fnv1a(b)%shardCount]
	sh.mu.RLock()
	s, ok := sh.m[string(b)] // no alloc: map lookup elides the conversion
	sh.mu.RUnlock()
	if ok {
		return s
	}
	sh.mu.Lock()
	// Double-check under the write lock: a concurrent intern of the
	// same bytes must return the same backing string.
	if s, ok = sh.m[string(b)]; !ok {
		s = string(b)
		sh.m[s] = s
	}
	sh.mu.Unlock()
	return s
}

// String returns the canonical interned string equal to s, interning
// s itself on first sight (no copy is made: the argument becomes the
// canonical backing).
func String(s string) string {
	if s == "" {
		return ""
	}
	sh := &shards[fnv1aString(s)%shardCount]
	sh.mu.RLock()
	c, ok := sh.m[s]
	sh.mu.RUnlock()
	if ok {
		return c
	}
	sh.mu.Lock()
	if c, ok = sh.m[s]; !ok {
		c = s
		sh.m[s] = s
	}
	sh.mu.Unlock()
	return c
}

// Len reports the number of distinct strings currently interned
// (test and debugging aid; takes every shard lock).
func Len() int {
	n := 0
	for i := range shards {
		shards[i].mu.RLock()
		n += len(shards[i].m)
		shards[i].mu.RUnlock()
	}
	return n
}
