// Package engine is the fused analysis pipeline behind
// report.AnalyzeSuite. Where the individual analysis.* functions each
// make a full pass over every session — and the all/perceptible
// populations double that — the engine computes the structural
// fingerprint, trigger class, location shares, cause shares, and
// concurrency for both populations in ONE traversal per episode plus
// one scan of its sampling ticks.
//
// Episodes are sharded into fixed-size chunks processed by a bounded
// worker pool and merged in chunk order. Because the chunk layout is a
// function of the input alone (never of the worker count) and the
// merge sequence is fixed, the engine produces byte-identical Results
// for any number of workers, including one.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"lagalyzer/internal/analysis"
	"lagalyzer/internal/obs"
	"lagalyzer/internal/patterns"
	"lagalyzer/internal/trace"
)

// Engine metrics. Counters are flushed in whole-run amounts (one
// atomic add each per Analyze), not per episode, so instrumentation
// overhead stays far below the per-episode budget. None of these
// observations feed back into analysis, so the byte-identical
// sequential-vs-parallel guarantee holds with tracing on.
var (
	mEpisodes = obs.NewCounter("engine_episodes_total",
		"episodes folded through the fused engine")
	mChunks = obs.NewCounter("engine_chunks_total",
		"fixed-size episode chunks processed")
	mShardsMerged = obs.NewCounter("engine_shards_merged_total",
		"shard accumulators merged into the deterministic result")
	mPanicsRecovered = obs.NewCounter("engine_panics_recovered_total",
		"worker panics contained and converted to attributed errors")
)

// Options configure an engine run. The zero value reproduces
// report.AnalyzeSuite's configuration.
type Options struct {
	// Patterns configures the structural fingerprint. Analyze stores
	// the perceptibility threshold into Patterns.Threshold, so callers
	// only set the structural knobs (IncludeGC, KindOnly).
	Patterns patterns.Options
	// Trigger configures the trigger classification.
	Trigger analysis.TriggerOptions
	// Library overrides the app-vs-library frame classifier; nil means
	// analysis.DefaultLibraryClassifier.
	Library analysis.LibraryClassifier
	// Workers bounds the worker pool; 0 means runtime.GOMAXPROCS(0).
	// The result is identical for every value.
	Workers int
}

// Result is everything report.AnalyzeSuite needs for one application.
// The All/Long pairs are the two populations of the paper's figures:
// every traced episode, and only the perceptible (≥ threshold) ones.
type Result struct {
	Overview analysis.Overview
	Pooled   *patterns.Set

	TriggerAll, TriggerLong   analysis.TriggerShares
	LocationAll, LocationLong analysis.LocationShares
	CausesAll, CausesLong     analysis.CauseShares

	ConcurrencyAll, ConcurrencyLong float64
	// TicksAll and TicksLong count the sampling ticks behind the
	// concurrency averages.
	TicksAll, TicksLong int
}

// chunkSize is the number of episodes per work unit. It is a fixed
// constant — never derived from the worker count — so the chunk
// layout, and with it every merge sequence, is identical no matter
// how many workers run.
const chunkSize = 512

// item is one episode together with the session that owns its ticks.
type item struct {
	s *trace.Session
	e *trace.Episode
}

// tickTally accumulates what one episode's sampling ticks contribute:
// concurrency over all ticks, causes over the episode thread's
// samples, and the app/library split over its Java-leaf samples.
type tickTally struct {
	app, lib int
	states   [4]int
	samples  int
	runnable int
	ticks    int
}

// population accumulates one episode population (all or perceptible).
// Everything is integral (counts and Dur sums), so merging shards is
// order-independent; fractions are derived only at the end.
type population struct {
	trigger analysis.TriggerShares

	app, lib           int
	gcTime, nativeTime trace.Dur
	episodeTime        trace.Dur

	states  [4]int
	samples int

	runnable, ticks int
}

func (p *population) addEpisode(e *trace.Episode, info epInfo, t tickTally) {
	p.trigger.Counts[info.trigger]++
	p.trigger.Total++

	p.episodeTime += e.Dur()
	p.gcTime += info.gc
	p.nativeTime += info.native

	p.app += t.app
	p.lib += t.lib
	for i, n := range t.states {
		p.states[i] += n
	}
	p.samples += t.samples
	p.runnable += t.runnable
	p.ticks += t.ticks
}

func (p *population) merge(o *population) {
	for i, n := range o.trigger.Counts {
		p.trigger.Counts[i] += n
	}
	p.trigger.Total += o.trigger.Total

	p.episodeTime += o.episodeTime
	p.gcTime += o.gcTime
	p.nativeTime += o.nativeTime

	p.app += o.app
	p.lib += o.lib
	for i, n := range o.states {
		p.states[i] += n
	}
	p.samples += o.samples
	p.runnable += o.runnable
	p.ticks += o.ticks
}

// locationShares derives Figure 6's shares exactly as
// analysis.LocationAnalysis does.
func (p *population) locationShares() analysis.LocationShares {
	shares := analysis.LocationShares{
		JavaSamples: p.app + p.lib,
		EpisodeTime: p.episodeTime,
	}
	if shares.JavaSamples > 0 {
		shares.App = float64(p.app) / float64(shares.JavaSamples)
		shares.Library = float64(p.lib) / float64(shares.JavaSamples)
	}
	if p.episodeTime > 0 {
		shares.GC = float64(p.gcTime) / float64(p.episodeTime)
		shares.Native = float64(p.nativeTime) / float64(p.episodeTime)
	}
	return shares
}

// causeShares derives Figure 8's shares exactly as
// analysis.CauseAnalysis does.
func (p *population) causeShares() analysis.CauseShares {
	c := analysis.CauseShares{Samples: p.samples}
	if p.samples == 0 {
		return c
	}
	total := float64(p.samples)
	c.Runnable = float64(p.states[trace.StateRunnable]) / total
	c.Blocked = float64(p.states[trace.StateBlocked]) / total
	c.Waiting = float64(p.states[trace.StateWaiting]) / total
	c.Sleeping = float64(p.states[trace.StateSleeping]) / total
	return c
}

// concurrency derives Figure 7's average exactly as
// analysis.Concurrency does.
func (p *population) concurrency() (float64, int) {
	if p.ticks == 0 {
		return 0, 0
	}
	return float64(p.runnable) / float64(p.ticks), p.ticks
}

// shard is one worker's private accumulator state.
type shard struct {
	pop     [2]population // [0] all episodes, [1] perceptible only
	builder *patterns.Builder
}

// Analyze runs the fused pipeline over a suite. threshold is the raw
// perceptibility threshold used for the Long population and the
// overview (report passes a resolved, non-zero value; 0 means every
// episode is perceptible, matching analysis.* semantics).
func Analyze(suite *trace.Suite, threshold trace.Dur, opts Options) *Result {
	return AnalyzeContext(context.Background(), suite, threshold, opts)
}

// AnalyzeContext is Analyze with observability: when the context
// carries an obs.Trace, the run records an "engine" phase span (with
// alloc delta) plus prepare/classify/merge/overview child spans and
// per-chunk spans attributed to the worker that ran them. With no
// trace installed the span calls are allocation-free no-ops; the only
// residual cost is three atomic counter adds per run.
func AnalyzeContext(ctx context.Context, suite *trace.Suite, threshold trace.Dur, opts Options) *Result {
	r, err := AnalyzeContextErr(ctx, suite, threshold, opts)
	if err != nil {
		// The error-free signature predates panic containment; its
		// callers have no error channel, so a contained panic (or a
		// cancelled context) surfaces the old way.
		panic(err)
	}
	return r
}

// AnalyzeContextErr is AnalyzeContext with fault containment: a panic
// inside a worker is recovered, counted, and returned as an error
// attributed to its chunk, and context cancellation stops the chunk
// fan-out between pickups. The happy path is bit-for-bit identical to
// AnalyzeContext.
func AnalyzeContextErr(ctx context.Context, suite *trace.Suite, threshold trace.Dur, opts Options) (_ *Result, err error) {
	ctx, endEngine := obs.PhaseSpan(ctx, "engine")
	defer endEngine()

	opts.Patterns.Threshold = threshold
	if opts.Library == nil {
		opts.Library = analysis.DefaultLibraryClassifier
	}

	_, endPrep := obs.Span(ctx, "prepare")
	total := 0
	for _, s := range suite.Sessions {
		total += len(s.Episodes)
	}
	items := make([]item, 0, total)
	for _, s := range suite.Sessions {
		for _, e := range s.Episodes {
			items = append(items, item{s, e})
		}
	}
	endPrep()

	chunks := (len(items) + chunkSize - 1) / chunkSize
	shards := make([]*shard, chunks)
	chunkErrs := make([]error, chunks)

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > chunks {
		workers = chunks
	}

	runChunk := func(wctx context.Context, ci int) {
		defer func() {
			if r := recover(); r != nil {
				mPanicsRecovered.Add(1)
				chunkErrs[ci] = fmt.Errorf("engine: panic in chunk %d of app %s: %v", ci, suite.App, r)
			}
		}()
		_, endChunk := obs.Span(wctx, "chunk")
		sh := &shard{builder: patterns.NewBuilder(opts.Patterns)}
		shards[ci] = sh
		w := newWalker(opts)
		lo := ci * chunkSize
		hi := min(lo+chunkSize, len(items))
		for ii, it := range items[lo:hi] {
			// Probe cancellation inside the chunk too (every 64 items),
			// so a per-app deadline or shutdown interrupts within tens of
			// episodes instead of only at chunk boundaries. The partial
			// shard is discarded with the run, so determinism is intact.
			if ii%64 == 0 && wctx.Err() != nil {
				chunkErrs[ci] = wctx.Err()
				break
			}
			analyzeItem(sh, w, it, threshold, opts.Library)
		}
		endChunk()
	}

	cctx, endClassify := obs.Span(ctx, "classify")
	if workers <= 1 {
		wctx := obs.WithWorker(cctx, 0)
		for ci := 0; ci < chunks && ctx.Err() == nil; ci++ {
			runChunk(wctx, ci)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				wctx := obs.WithWorker(cctx, w)
				for ctx.Err() == nil {
					ci := int(next.Add(1)) - 1
					if ci >= chunks {
						return
					}
					runChunk(wctx, ci)
				}
			}(w)
		}
		wg.Wait()
	}
	endClassify()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Attribute failures deterministically: the lowest-indexed failing
	// chunk wins no matter which worker hit it first.
	for _, cerr := range chunkErrs {
		if cerr != nil {
			return nil, cerr
		}
	}
	mEpisodes.Add(int64(len(items)))
	mChunks.Add(int64(chunks))

	// Deterministic merge: always in chunk index order, so pattern
	// encounter order and the floating-point lag accumulation are the
	// same no matter which worker processed which chunk.
	_, endMerge := obs.Span(ctx, "merge")
	merged := &shard{builder: patterns.NewBuilder(opts.Patterns)}
	if chunks > 0 {
		merged = shards[0]
		for _, sh := range shards[1:] {
			merged.pop[0].merge(&sh.pop[0])
			merged.pop[1].merge(&sh.pop[1])
			merged.builder.Merge(sh.builder)
		}
		mShardsMerged.Add(int64(chunks - 1))
	}
	pooled := merged.builder.Finish()
	endMerge()

	_, endOverview := obs.Span(ctx, "overview")
	r := &Result{
		Overview: overviewOf(suite, threshold, pooled),
		Pooled:   pooled,

		TriggerAll:   merged.pop[0].trigger,
		TriggerLong:  merged.pop[1].trigger,
		LocationAll:  merged.pop[0].locationShares(),
		LocationLong: merged.pop[1].locationShares(),
		CausesAll:    merged.pop[0].causeShares(),
		CausesLong:   merged.pop[1].causeShares(),
	}
	r.ConcurrencyAll, r.TicksAll = merged.pop[0].concurrency()
	r.ConcurrencyLong, r.TicksLong = merged.pop[1].concurrency()
	endOverview()
	return r, nil
}

// analyzeItem folds one episode into the shard: one tree walk (canon +
// hash + structure + trigger + GC/native time), one tick scan
// (concurrency + causes + location), emitted into the all-episodes
// population and, when perceptible, the long population too.
func analyzeItem(sh *shard, w *walker, it item, threshold trace.Dur, isLibrary analysis.LibraryClassifier) {
	info := w.analyze(it.e)
	ref := patterns.EpisodeRef{Session: it.s, Episode: it.e}
	if info.structured {
		sh.builder.Add(ref, info.print)
	} else {
		sh.builder.AddUnstructured(ref)
	}

	var t tickTally
	ticks := it.s.EpisodeTicks(it.e)
	for ti := range ticks {
		tick := &ticks[ti]
		run, idx := tick.ScanThread(it.e.Thread)
		t.runnable += run
		t.ticks++
		if idx < 0 {
			continue
		}
		ts := &tick.Threads[idx]
		t.states[ts.State]++
		t.samples++
		if len(ts.Stack) > 0 && !ts.Stack[0].Native {
			if isLibrary(ts.Stack[0]) {
				t.lib++
			} else {
				t.app++
			}
		}
	}

	sh.pop[0].addEpisode(it.e, info, t)
	if it.e.Perceptible(threshold) {
		sh.pop[1].addEpisode(it.e, info, t)
	}
}

// overviewOf computes the Table III row from the pooled pattern set
// instead of re-classifying each session: a session's own pattern set
// is exactly the pooled set restricted to its episodes (the canonical
// form — and with it Descendants and Depth — is a function of the
// episode alone), so per-session Dist, #Eps, One-Ep, Descs, and Depth
// fall out of one scan over the pooled patterns' episode lists. The
// floating-point operations replicate analysis.OverviewOf's order so
// the result is identical.
func overviewOf(suite *trace.Suite, threshold trace.Dur, pooled *patterns.Set) analysis.Overview {
	o := analysis.Overview{App: suite.App, Sessions: len(suite.Sessions)}
	ns := len(suite.Sessions)
	if ns == 0 {
		return o
	}

	sessIdx := make(map[*trace.Session]int, ns)
	for i, s := range suite.Sessions {
		sessIdx[s] = i
	}

	var (
		dist     = make([]int, ns)
		covered  = make([]int, ns)
		single   = make([]int, ns)
		descsSum = make([]int, ns)
		depthSum = make([]int, ns)

		counts  = make([]int, ns) // per-pattern scratch
		touched []int
	)
	for _, p := range pooled.Patterns {
		for _, ref := range p.Episodes {
			si := sessIdx[ref.Session]
			if counts[si] == 0 {
				touched = append(touched, si)
			}
			counts[si]++
		}
		for _, si := range touched {
			dist[si]++
			covered[si] += counts[si]
			if counts[si] == 1 {
				single[si]++
			}
			descsSum[si] += p.Descendants
			depthSum[si] += p.Depth
			counts[si] = 0
		}
		touched = touched[:0]
	}

	n := float64(ns)
	for si, s := range suite.Sessions {
		o.E2ESeconds += s.E2E().Seconds() / n
		o.InEpsFrac += s.InEpisodeFrac() / n
		o.Short += float64(s.ShortCount) / n
		o.Traced += float64(len(s.Episodes)) / n
		perceptible := 0
		for _, e := range s.Episodes {
			if e.Perceptible(threshold) {
				perceptible++
			}
		}
		o.Perceptible += float64(perceptible) / n
		if inEps := s.InEpisode(); inEps > 0 {
			o.LongPerMin += float64(perceptible) / (inEps.Seconds() / 60) / n
		}

		o.Dist += float64(dist[si]) / n
		o.CoveredEps += float64(covered[si]) / n
		if dist[si] > 0 {
			o.OneEpFrac += (float64(single[si]) / float64(dist[si])) / n
			o.Descs += (float64(descsSum[si]) / float64(dist[si])) / n
			o.Depth += (float64(depthSum[si]) / float64(dist[si])) / n
		}
	}
	return o
}
