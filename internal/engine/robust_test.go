package engine_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"lagalyzer/internal/engine"
	"lagalyzer/internal/trace"
)

// brokenSuite returns a suite whose single episode has a nil root —
// walking it panics, which the engine must contain.
func brokenSuite() *trace.Suite {
	s := &trace.Session{App: "broken", Start: 0, End: 1000}
	s.Episodes = []*trace.Episode{{Thread: 1, Root: nil}}
	return &trace.Suite{App: "broken", Sessions: []*trace.Session{s}}
}

func TestEnginePanicContained(t *testing.T) {
	_, err := engine.AnalyzeContextErr(context.Background(), brokenSuite(), 0, engine.Options{})
	if err == nil {
		t.Fatal("panic in walker not surfaced as error")
	}
	if !strings.Contains(err.Error(), "panic in chunk 0") || !strings.Contains(err.Error(), "broken") {
		t.Errorf("error not attributed to chunk and app: %v", err)
	}
	// The same failure under a parallel pool must yield the same error.
	_, perr := engine.AnalyzeContextErr(context.Background(), brokenSuite(), 0, engine.Options{Workers: 4})
	if perr == nil || perr.Error() != err.Error() {
		t.Errorf("parallel error %v differs from sequential %v", perr, err)
	}
}

func TestEngineLegacyAPIPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("error-free AnalyzeContext swallowed the failure")
		}
	}()
	engine.AnalyzeContext(context.Background(), brokenSuite(), 0, engine.Options{})
}

func TestEngineCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	suite := &trace.Suite{App: "x", Sessions: []*trace.Session{{App: "x", End: 1000}}}
	_, err := engine.AnalyzeContextErr(ctx, suite, 0, engine.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
