package engine

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"lagalyzer/internal/analysis"
	"lagalyzer/internal/apps"
	"lagalyzer/internal/patterns"
	"lagalyzer/internal/sim"
	"lagalyzer/internal/trace"
)

// testSuite simulates a small two-session suite once for the package.
var testSuite = sync.OnceValue(func() *trace.Suite {
	suite := &trace.Suite{App: "GanttProject"}
	for i := 0; i < 2; i++ {
		s, err := sim.Run(sim.Config{
			Profile:        apps.GanttProject(),
			SessionID:      i,
			Seed:           7,
			SessionSeconds: 45,
		})
		if err != nil {
			panic(err)
		}
		suite.Sessions = append(suite.Sessions, s)
	}
	return suite
})

const threshold = trace.DefaultPerceptibleThreshold

// TestEngineMatchesLegacyAnalyses checks that the fused single pass
// reproduces every figure the dedicated analysis.* functions compute
// in nine separate passes, on both populations.
func TestEngineMatchesLegacyAnalyses(t *testing.T) {
	suite := testSuite()
	sessions := suite.Sessions
	r := Analyze(suite, threshold, Options{})

	if want := analysis.TriggerAnalysis(sessions, threshold, false, analysis.TriggerOptions{}); r.TriggerAll != want {
		t.Errorf("TriggerAll = %+v, want %+v", r.TriggerAll, want)
	}
	if want := analysis.TriggerAnalysis(sessions, threshold, true, analysis.TriggerOptions{}); r.TriggerLong != want {
		t.Errorf("TriggerLong = %+v, want %+v", r.TriggerLong, want)
	}
	if want := analysis.LocationAnalysis(sessions, threshold, false, nil); r.LocationAll != want {
		t.Errorf("LocationAll = %+v, want %+v", r.LocationAll, want)
	}
	if want := analysis.LocationAnalysis(sessions, threshold, true, nil); r.LocationLong != want {
		t.Errorf("LocationLong = %+v, want %+v", r.LocationLong, want)
	}
	if want := analysis.CauseAnalysis(sessions, threshold, false); r.CausesAll != want {
		t.Errorf("CausesAll = %+v, want %+v", r.CausesAll, want)
	}
	if want := analysis.CauseAnalysis(sessions, threshold, true); r.CausesLong != want {
		t.Errorf("CausesLong = %+v, want %+v", r.CausesLong, want)
	}
	if want, ticks := analysis.Concurrency(sessions, threshold, false); r.ConcurrencyAll != want || r.TicksAll != ticks {
		t.Errorf("ConcurrencyAll = %v/%d, want %v/%d", r.ConcurrencyAll, r.TicksAll, want, ticks)
	}
	if want, ticks := analysis.Concurrency(sessions, threshold, true); r.ConcurrencyLong != want || r.TicksLong != ticks {
		t.Errorf("ConcurrencyLong = %v/%d, want %v/%d", r.ConcurrencyLong, r.TicksLong, want, ticks)
	}
}

// TestEngineOverviewMatchesLegacy checks the pooled-set derivation of
// Table III against analysis.OverviewOf's per-session classification.
// The derivation replicates the legacy floating-point operation order,
// so the comparison is exact, not within a tolerance.
func TestEngineOverviewMatchesLegacy(t *testing.T) {
	suite := testSuite()
	got := Analyze(suite, threshold, Options{}).Overview
	want := analysis.OverviewOf(suite, threshold)
	if got != want {
		t.Errorf("Overview = %+v, want %+v", got, want)
	}
	if got.Traced == 0 || got.Dist == 0 {
		t.Errorf("degenerate overview (no episodes or patterns): %+v", got)
	}
}

// TestEnginePooledMatchesClassify checks that the engine's pooled set
// is the same set patterns.Classify produces.
func TestEnginePooledMatchesClassify(t *testing.T) {
	suite := testSuite()
	got := Analyze(suite, threshold, Options{}).Pooled
	want := patterns.Classify(suite.Sessions, patterns.Options{Threshold: threshold})

	if len(got.Patterns) != len(want.Patterns) {
		t.Fatalf("patterns = %d, want %d", len(got.Patterns), len(want.Patterns))
	}
	for i, p := range got.Patterns {
		q := want.Patterns[i]
		if p.Canon != q.Canon || p.Hash != q.Hash || p.ID() != q.ID() {
			t.Fatalf("pattern %d: %q/%q (%s/%s)", i, p.Canon, q.Canon, p.ID(), q.ID())
		}
		if len(p.Episodes) != len(q.Episodes) {
			t.Fatalf("pattern %q count = %d, want %d", p.Canon, len(p.Episodes), len(q.Episodes))
		}
		for j := range p.Episodes {
			if p.Episodes[j] != q.Episodes[j] {
				t.Fatalf("pattern %q episode %d differs", p.Canon, j)
			}
		}
	}
	if len(got.Unstructured) != len(want.Unstructured) {
		t.Errorf("unstructured = %d, want %d", len(got.Unstructured), len(want.Unstructured))
	}
}

// TestEngineWorkerCountInvariance is the tentpole determinism
// guarantee: one worker and many workers must produce byte-identical
// results, including pattern ordering, IDs, and every floating-point
// figure (reflect.DeepEqual also compares the patterns' unexported
// lag summaries, which only merge identically because the chunk
// layout and merge order are fixed).
func TestEngineWorkerCountInvariance(t *testing.T) {
	suite := testSuite()
	base := Analyze(suite, threshold, Options{Workers: 1})
	for _, workers := range []int{2, 4, 16} {
		r := Analyze(suite, threshold, Options{Workers: workers})
		if !reflect.DeepEqual(base, r) {
			t.Fatalf("workers=%d result differs from workers=1", workers)
		}
	}
}

// TestEngineRepeatable: same inputs, same result, run to run.
func TestEngineRepeatable(t *testing.T) {
	suite := testSuite()
	a := Analyze(suite, threshold, Options{})
	b := Analyze(suite, threshold, Options{})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("repeated Analyze runs differ")
	}
}

// TestEngineZeroThreshold: a zero threshold means every episode is
// perceptible, so the two populations coincide.
func TestEngineZeroThreshold(t *testing.T) {
	suite := testSuite()
	r := Analyze(suite, 0, Options{})
	if r.TriggerAll != r.TriggerLong || r.TicksAll != r.TicksLong {
		t.Error("threshold 0 should make the populations identical")
	}
	if r.Overview.Traced != r.Overview.Perceptible {
		t.Errorf("Traced %v != Perceptible %v at threshold 0", r.Overview.Traced, r.Overview.Perceptible)
	}
}

// TestEngineEmptySuite must not panic and must return zero values.
func TestEngineEmptySuite(t *testing.T) {
	r := Analyze(&trace.Suite{App: "empty"}, threshold, Options{})
	if r.Pooled == nil || len(r.Pooled.Patterns) != 0 {
		t.Errorf("empty suite pooled set: %+v", r.Pooled)
	}
	if r.TriggerAll.Total != 0 || r.ConcurrencyAll != 0 {
		t.Error("empty suite produced non-zero figures")
	}
	if r.Overview.Sessions != 0 {
		t.Errorf("Sessions = %d, want 0", r.Overview.Sessions)
	}
}

// TestEngineSharesSane: the derived fractions must be well-formed
// (finite, partitions summing to 1 where defined).
func TestEngineSharesSane(t *testing.T) {
	suite := testSuite()
	r := Analyze(suite, threshold, Options{})
	for _, loc := range []analysis.LocationShares{r.LocationAll, r.LocationLong} {
		if loc.JavaSamples > 0 && math.Abs(loc.App+loc.Library-1) > 1e-9 {
			t.Errorf("App+Library = %v, want 1", loc.App+loc.Library)
		}
	}
	for _, c := range []analysis.CauseShares{r.CausesAll, r.CausesLong} {
		if c.Samples > 0 && math.Abs(c.Blocked+c.Waiting+c.Sleeping+c.Runnable-1) > 1e-9 {
			t.Errorf("cause shares sum to %v, want 1", c.Blocked+c.Waiting+c.Sleeping+c.Runnable)
		}
	}
}
