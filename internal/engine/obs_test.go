package engine

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"lagalyzer/internal/obs"
)

// TestEngineInstrumentedDeterminism is the acceptance guard for the
// observability layer: with span tracing enabled, one worker and many
// workers must still produce byte-identical results — instrumentation
// only observes, never influences.
func TestEngineInstrumentedDeterminism(t *testing.T) {
	suite := testSuite()
	plain := Analyze(suite, threshold, Options{Workers: 1})
	for _, workers := range []int{1, 4, 16} {
		ctx := obs.WithTrace(context.Background(), obs.NewTrace())
		r := AnalyzeContext(ctx, suite, threshold, Options{Workers: workers})
		if !reflect.DeepEqual(plain, r) {
			t.Fatalf("workers=%d traced result differs from untraced workers=1", workers)
		}
	}
}

// TestEngineSpans checks the shape of the recorded trace: the engine
// phase with its prepare/classify/merge/overview children, per-chunk
// spans attributed to workers, and an alloc delta on the phase span.
func TestEngineSpans(t *testing.T) {
	suite := testSuite()
	tr := obs.NewTrace()
	ctx := obs.WithTrace(context.Background(), tr)
	AnalyzeContext(ctx, suite, threshold, Options{Workers: 2})

	rows := tr.Summary()
	byPath := map[string]int{}
	chunkCount := 0
	workerSeen := false
	for _, r := range rows {
		byPath[r.Path] += r.Count
		if strings.HasSuffix(r.Path, "/chunk") {
			chunkCount += r.Count
			if r.Worker >= 0 {
				workerSeen = true
			}
		}
	}
	for _, want := range []string{"engine", "engine/prepare", "engine/classify", "engine/merge", "engine/overview"} {
		if byPath[want] != 1 {
			t.Errorf("span %q count = %d, want 1 (rows: %v)", want, byPath[want], byPath)
		}
	}
	total := 0
	for _, s := range suite.Sessions {
		total += len(s.Episodes)
	}
	wantChunks := (total + chunkSize - 1) / chunkSize
	if chunkCount != wantChunks {
		t.Errorf("chunk spans = %d, want %d", chunkCount, wantChunks)
	}
	if !workerSeen {
		t.Error("no chunk span carried a worker attribution")
	}
	for _, r := range rows {
		if r.Path == "engine" && r.AllocBytes == 0 {
			t.Error("engine phase span has no alloc delta")
		}
	}
}

// TestEngineMetrics checks the whole-run counter flushes.
func TestEngineMetrics(t *testing.T) {
	suite := testSuite()
	epBefore := obs.NewCounter("engine_episodes_total", "").Value()
	chBefore := obs.NewCounter("engine_chunks_total", "").Value()
	Analyze(suite, threshold, Options{})
	total := 0
	for _, s := range suite.Sessions {
		total += len(s.Episodes)
	}
	if got := obs.NewCounter("engine_episodes_total", "").Value() - epBefore; got != int64(total) {
		t.Errorf("engine_episodes_total advanced by %d, want %d", got, total)
	}
	wantChunks := int64((total + chunkSize - 1) / chunkSize)
	if got := obs.NewCounter("engine_chunks_total", "").Value() - chBefore; got != wantChunks {
		t.Errorf("engine_chunks_total advanced by %d, want %d", got, wantChunks)
	}
}
