package engine

import (
	"lagalyzer/internal/analysis"
	"lagalyzer/internal/patterns"
	"lagalyzer/internal/trace"
)

// EpisodeInfo is the per-episode result of one fused walk, exposed
// for consumers outside the batch pipeline (the ingest batch
// reference uses it so streamed and batch window aggregates share the
// exact same per-episode math).
type EpisodeInfo struct {
	// Structured reports whether the episode participates in pattern
	// classification; Print is valid only when it does, and only
	// until the next Analyze call on the same EpisodeAnalyzer.
	Structured bool
	Print      patterns.Print

	Trigger    analysis.Trigger
	GC, Native trace.Dur
}

// EpisodeAnalyzer wraps the engine's fused per-episode traversal
// (canonical fingerprint, trigger class, exclusive GC/native time in
// a single walk). Not safe for concurrent use.
type EpisodeAnalyzer struct {
	w *walker
}

// NewEpisodeAnalyzer builds an analyzer with the same defaults the
// engine pipeline uses.
func NewEpisodeAnalyzer(opts Options) *EpisodeAnalyzer {
	return &EpisodeAnalyzer{w: newWalker(opts)}
}

// Analyze traverses one episode exactly once. The returned
// Print.Canon aliases an internal buffer reused by the next call.
func (ea *EpisodeAnalyzer) Analyze(e *trace.Episode) EpisodeInfo {
	info := ea.w.analyze(e)
	return EpisodeInfo{
		Structured: info.structured,
		Print:      info.print,
		Trigger:    info.trigger,
		GC:         info.gc,
		Native:     info.native,
	}
}
