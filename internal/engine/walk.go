package engine

import (
	"lagalyzer/internal/analysis"
	"lagalyzer/internal/patterns"
	"lagalyzer/internal/trace"
)

// FNV-1a 64-bit parameters, matching internal/patterns so the engine's
// inline hashes are identical to patterns.Classify's.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// walker holds the per-worker state of the fused episode traversal.
// One walker is reused across all episodes a worker processes, so the
// canon buffer is allocated once per worker instead of once per
// episode. A walker is not safe for concurrent use.
type walker struct {
	popt patterns.Options
	topt analysis.TriggerOptions

	// canon emission + incremental FNV-1a hash
	buf  []byte
	hash uint64

	// trigger classification state
	decided   bool
	scanPaint bool
	trigger   analysis.Trigger

	// exclusive per-kind time (Figure 6's GC/native fractions)
	gc, native trace.Dur
}

func newWalker(opts Options) *walker {
	return &walker{popt: opts.Patterns, topt: opts.Trigger}
}

// epInfo is everything one fused walk learns about an episode.
type epInfo struct {
	print      patterns.Print // Canon aliases the walker's buffer
	structured bool
	trigger    analysis.Trigger
	gc, native trace.Dur
}

// analyze traverses the episode's interval tree exactly once,
// simultaneously computing the structural fingerprint (canonical
// bytes, FNV-1a hash, descendants, depth — GC nodes excluded unless
// the options include them), the trigger class (first listener, paint,
// or async interval in preorder, with the repaint-manager async→output
// reclassification), and the exclusive GC and native time. The
// returned epInfo.print is valid until the next analyze call.
func (w *walker) analyze(e *trace.Episode) epInfo {
	w.buf = w.buf[:0]
	w.hash = fnvOffset64
	w.decided, w.scanPaint = false, false
	w.trigger = analysis.TriggerUnspecified
	w.gc, w.native = 0, 0

	structured := patterns.Classifiable(e, w.popt)
	descs, depth := w.visit(e.Root, structured)

	info := epInfo{
		structured: structured,
		trigger:    w.trigger,
		gc:         w.gc,
		native:     w.native,
	}
	if structured {
		info.print = patterns.Print{
			Canon:       w.buf,
			Hash:        w.hash,
			Descendants: descs,
			Depth:       depth,
		}
	}
	return info
}

// visit recurses over the full tree in preorder (the trigger and
// kind-time accountings need every node, including excluded GC
// subtrees); canon gates which nodes also emit canonical bytes and
// count toward the structural metrics.
func (w *walker) visit(iv *trace.Interval, canon bool) (descs, depth int) {
	decidingAsync := false
	if !w.decided {
		switch iv.Kind {
		case trace.KindListener:
			w.decided, w.trigger = true, analysis.TriggerInput
		case trace.KindPaint:
			w.decided, w.trigger = true, analysis.TriggerOutput
		case trace.KindAsync:
			w.decided, w.trigger = true, analysis.TriggerAsync
			if !w.topt.NoAsyncReclassify {
				// A paint anywhere below this async interval
				// reclassifies the episode as output (the Swing
				// repaint-manager case).
				w.scanPaint, decidingAsync = true, true
			}
		}
	} else if w.scanPaint && iv.Kind == trace.KindPaint {
		w.trigger = analysis.TriggerOutput
		w.scanPaint = false
	}

	if canon {
		w.emitString(iv.Kind.String())
		if !w.popt.KindOnly && (iv.Class != "" || iv.Method != "") {
			w.emitByte('[')
			w.emitString(iv.Class)
			w.emitByte('.')
			w.emitString(iv.Method)
			w.emitByte(']')
		}
	}

	self := iv.Dur()
	wrote := false
	maxChild := 0
	for _, c := range iv.Children {
		self -= c.Dur()
		if canon && !(c.Kind == trace.KindGC && !w.popt.IncludeGC) {
			if !wrote {
				w.emitByte('(')
				wrote = true
			} else {
				w.emitByte(',')
			}
			d, dep := w.visit(c, true)
			descs += 1 + d
			if dep > maxChild {
				maxChild = dep
			}
		} else {
			w.visit(c, false)
		}
	}
	if wrote {
		w.emitByte(')')
	}

	switch iv.Kind {
	case trace.KindGC:
		w.gc += self
	case trace.KindNative:
		w.native += self
	}
	if decidingAsync {
		w.scanPaint = false
	}
	return descs, maxChild + 1
}

func (w *walker) emitString(s string) {
	w.buf = append(w.buf, s...)
	h := w.hash
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	w.hash = h
}

func (w *walker) emitByte(b byte) {
	w.buf = append(w.buf, b)
	w.hash = (w.hash ^ uint64(b)) * fnvPrime64
}
