// Package browser implements LagAlyzer's pattern browser (Section
// II-E of the paper) as a UI-toolkit-independent model plus a plain
// text renderer.
//
// The browser presents a table of patterns with, for each pattern, the
// number of episodes and the minimum, average, maximum, and total lag
// over the pattern's episodes. The developer can elide patterns that
// have no perceptible episodes, select a pattern to reveal its episode
// list and the sketch of its first episode, and step through the
// episodes' sketches to grasp the timing variation within the pattern.
package browser

import (
	"fmt"
	"sort"
	"strings"

	"lagalyzer/internal/patterns"
	"lagalyzer/internal/trace"
	"lagalyzer/internal/viz"
)

// SortKey selects the pattern table's ordering.
type SortKey int

const (
	// SortByCount orders by episode count, descending.
	SortByCount SortKey = iota
	// SortByTotalLag orders by total lag, descending — the "where
	// does the time go" view.
	SortByTotalLag
	// SortByMaxLag orders by worst episode, descending.
	SortByMaxLag
	// SortByAvgLag orders by average lag, descending.
	SortByAvgLag
)

// String names the sort key.
func (k SortKey) String() string {
	switch k {
	case SortByCount:
		return "count"
	case SortByTotalLag:
		return "total"
	case SortByMaxLag:
		return "max"
	case SortByAvgLag:
		return "avg"
	default:
		return fmt.Sprintf("sortkey(%d)", int(k))
	}
}

// ParseSortKey recognises the names of String.
func ParseSortKey(s string) (SortKey, error) {
	for _, k := range []SortKey{SortByCount, SortByTotalLag, SortByMaxLag, SortByAvgLag} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("browser: unknown sort key %q (want count, total, max, or avg)", s)
}

// Browser is the pattern-browser model: a view over a pattern set with
// sorting, perceptibility filtering, and a selection cursor.
type Browser struct {
	set       *patterns.Set
	threshold trace.Dur

	sortKey         SortKey
	perceptibleOnly bool

	view     []*patterns.Pattern // current table, post filter/sort
	selected int                 // index into view, -1 when nothing selected
	episode  int                 // index into the selected pattern's episodes
}

// New builds a browser over a classified pattern set. The threshold is
// the perceptibility threshold used for filtering and occurrence
// display; 0 means the set's own option (or the paper's 100 ms).
func New(set *patterns.Set, threshold trace.Dur) *Browser {
	if threshold == 0 {
		threshold = set.Options.Threshold
	}
	if threshold == 0 {
		threshold = trace.DefaultPerceptibleThreshold
	}
	b := &Browser{set: set, threshold: threshold, selected: -1}
	b.rebuild()
	return b
}

func (b *Browser) rebuild() {
	b.view = b.view[:0]
	for _, p := range b.set.Patterns {
		if b.perceptibleOnly && p.PerceptibleCount(b.threshold) == 0 {
			continue
		}
		b.view = append(b.view, p)
	}
	key := b.sortKey
	sort.SliceStable(b.view, func(i, j int) bool {
		a, c := b.view[i], b.view[j]
		switch key {
		case SortByTotalLag:
			return a.TotalLag() > c.TotalLag()
		case SortByMaxLag:
			return a.MaxLag() > c.MaxLag()
		case SortByAvgLag:
			return a.AvgLag() > c.AvgLag()
		default:
			return a.Count() > c.Count()
		}
	})
	b.selected = -1
	b.episode = 0
}

// SetSort reorders the table.
func (b *Browser) SetSort(k SortKey) {
	b.sortKey = k
	b.rebuild()
}

// SetPerceptibleOnly toggles the "elide patterns without perceptible
// episodes" filter.
func (b *Browser) SetPerceptibleOnly(on bool) {
	b.perceptibleOnly = on
	b.rebuild()
}

// Len returns the number of patterns in the current view.
func (b *Browser) Len() int { return len(b.view) }

// Patterns returns the current view in table order.
func (b *Browser) Patterns() []*patterns.Pattern { return b.view }

// Select sets the cursor to the i-th pattern of the view and resets
// the episode cursor to the pattern's first episode.
func (b *Browser) Select(i int) error {
	if i < 0 || i >= len(b.view) {
		return fmt.Errorf("browser: pattern %d out of range (view has %d)", i, len(b.view))
	}
	b.selected = i
	b.episode = 0
	return nil
}

// Selected returns the selected pattern, or nil.
func (b *Browser) Selected() *patterns.Pattern {
	if b.selected < 0 {
		return nil
	}
	return b.view[b.selected]
}

// Episode returns the current episode of the selected pattern.
func (b *Browser) Episode() (patterns.EpisodeRef, bool) {
	p := b.Selected()
	if p == nil {
		return patterns.EpisodeRef{}, false
	}
	return p.Episodes[b.episode], true
}

// NextEpisode and PrevEpisode step through the selected pattern's
// episodes (wrapping), letting a developer "browse through the
// sketches of all episodes in the pattern".
func (b *Browser) NextEpisode() {
	if p := b.Selected(); p != nil {
		b.episode = (b.episode + 1) % p.Count()
	}
}

// PrevEpisode steps backwards; see NextEpisode.
func (b *Browser) PrevEpisode() {
	if p := b.Selected(); p != nil {
		b.episode = (b.episode - 1 + p.Count()) % p.Count()
	}
}

// EpisodeIndex returns the episode cursor within the selected pattern.
func (b *Browser) EpisodeIndex() int { return b.episode }

// Table renders the pattern table (up to limit rows; 0 means all).
func (b *Browser) Table(limit int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "patterns: %d shown / %d total   sort=%s   perceptible-only=%v   threshold=%v\n",
		len(b.view), len(b.set.Patterns), b.sortKey, b.perceptibleOnly, b.threshold)
	fmt.Fprintf(&sb, "%4s %-14s %6s %6s %5s | %9s %9s %9s %11s | %-9s %s\n",
		"#", "id", "eps", ">=thr", "gc%", "min", "avg", "max", "total", "occurs", "structure")
	n := len(b.view)
	if limit > 0 && limit < n {
		n = limit
	}
	for i := 0; i < n; i++ {
		p := b.view[i]
		marker := " "
		if i == b.selected {
			marker = ">"
		}
		canon := p.Canon
		if len(canon) > 48 {
			canon = canon[:45] + "..."
		}
		fmt.Fprintf(&sb, "%s%3d %-14s %6d %6d %4.0f%% | %9v %9v %9v %11v | %-9s %s\n",
			marker, i, p.ID(), p.Count(), p.PerceptibleCount(b.threshold), p.GCFrac()*100,
			p.MinLag(), p.AvgLag(), p.MaxLag(), p.TotalLag(),
			p.Occurrence(b.threshold), canon)
	}
	if n < len(b.view) {
		fmt.Fprintf(&sb, "... %d more\n", len(b.view)-n)
	}
	return sb.String()
}

// EpisodeList renders the selected pattern's episode list.
func (b *Browser) EpisodeList() string {
	p := b.Selected()
	if p == nil {
		return "no pattern selected\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "pattern %s: %d episode(s)\n%s\n", p.ID(), p.Count(), p.Canon)
	for i, ref := range p.Episodes {
		marker := " "
		if i == b.episode {
			marker = ">"
		}
		perceptible := ""
		if ref.Episode.Perceptible(b.threshold) {
			perceptible = "  PERCEPTIBLE"
		}
		session := "?"
		if ref.Session != nil {
			session = fmt.Sprintf("%s/%d", ref.Session.App, ref.Session.ID)
		}
		fmt.Fprintf(&sb, "%s%3d  %-16s episode %-5d start %-12v lag %v%s\n",
			marker, i, session, ref.Episode.Index, ref.Episode.Start(), ref.Episode.Dur(), perceptible)
	}
	return sb.String()
}

// SketchSVG renders the current episode's sketch as SVG.
func (b *Browser) SketchSVG() (string, bool) {
	ref, ok := b.Episode()
	if !ok {
		return "", false
	}
	return viz.Sketch(ref.Session, ref.Episode, viz.SketchOptions{}), true
}

// SketchText renders the current episode's plain-text sketch.
func (b *Browser) SketchText() (string, bool) {
	ref, ok := b.Episode()
	if !ok {
		return "", false
	}
	return viz.SketchText(ref.Session, ref.Episode), true
}
