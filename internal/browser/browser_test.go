package browser

import (
	"strings"
	"testing"

	"lagalyzer/internal/patterns"
	"lagalyzer/internal/trace"
)

func ms(v float64) trace.Time { return trace.Time(trace.Ms(v)) }

// testSet builds a set with three patterns:
//   - "hot": 3 episodes (10, 200, 300 ms) → sometimes perceptible
//   - "cold": 2 episodes (5, 6 ms) → never perceptible
//   - "slowest": 1 episode (900 ms) → always perceptible
func testSet() *patterns.Set {
	var eps []*trace.Episode
	add := func(cls string, durs ...float64) {
		for _, d := range durs {
			start := trace.Time(len(eps)) * trace.Time(2*trace.Second)
			root := trace.NewInterval(trace.KindDispatch, "", "", start, trace.Ms(d))
			root.AddChild(trace.NewInterval(trace.KindListener, cls, "on", start, trace.Ms(d/2)))
			eps = append(eps, &trace.Episode{Index: len(eps), Thread: 1, Root: root})
		}
	}
	add("app.Hot", 10, 200, 300)
	add("app.Cold", 5, 6)
	add("app.Slowest", 900)
	s := &trace.Session{App: "t", GUIThread: 1, Start: 0, End: trace.Time(60 * trace.Second), Episodes: eps}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return patterns.Classify([]*trace.Session{s}, patterns.Options{})
}

func TestTableSortAndFilter(t *testing.T) {
	b := New(testSet(), 0)
	if b.Len() != 3 {
		t.Fatalf("view has %d patterns, want 3", b.Len())
	}
	// Default: by count descending → hot first.
	if got := b.Patterns()[0].Count(); got != 3 {
		t.Errorf("first pattern count = %d, want 3", got)
	}

	b.SetSort(SortByMaxLag)
	if got := b.Patterns()[0].MaxLag(); got != trace.Ms(900) {
		t.Errorf("max-lag sort: first max = %v, want 900ms", got)
	}
	b.SetSort(SortByTotalLag)
	if got := b.Patterns()[0].TotalLag(); got != trace.Ms(900) {
		t.Errorf("total-lag sort: first total = %v", got)
	}
	b.SetSort(SortByAvgLag)
	if got := b.Patterns()[0].AvgLag(); got != trace.Ms(900) {
		t.Errorf("avg-lag sort: first avg = %v", got)
	}

	b.SetPerceptibleOnly(true)
	if b.Len() != 2 {
		t.Fatalf("perceptible-only view has %d patterns, want 2", b.Len())
	}
	for _, p := range b.Patterns() {
		if p.PerceptibleCount(trace.DefaultPerceptibleThreshold) == 0 {
			t.Error("imperceptible pattern survived the filter")
		}
	}
	b.SetPerceptibleOnly(false)
	if b.Len() != 3 {
		t.Error("filter did not reset")
	}
}

func TestSelectionAndEpisodeCursor(t *testing.T) {
	b := New(testSet(), 0)
	if b.Selected() != nil {
		t.Error("fresh browser should have no selection")
	}
	if _, ok := b.Episode(); ok {
		t.Error("no episode without selection")
	}
	if err := b.Select(99); err == nil {
		t.Error("out-of-range selection accepted")
	}
	if err := b.Select(0); err != nil {
		t.Fatal(err)
	}
	p := b.Selected()
	if p.Count() != 3 {
		t.Fatalf("selected pattern has %d episodes", p.Count())
	}
	ref, ok := b.Episode()
	if !ok || ref.Episode != p.First().Episode {
		t.Error("selection should start at the pattern's first episode")
	}
	b.NextEpisode()
	if b.EpisodeIndex() != 1 {
		t.Errorf("after next, index = %d", b.EpisodeIndex())
	}
	b.NextEpisode()
	b.NextEpisode() // wraps
	if b.EpisodeIndex() != 0 {
		t.Errorf("episode cursor should wrap, index = %d", b.EpisodeIndex())
	}
	b.PrevEpisode()
	if b.EpisodeIndex() != 2 {
		t.Errorf("prev from 0 should wrap to 2, index = %d", b.EpisodeIndex())
	}
	// Cursor moves without selection are no-ops.
	b2 := New(testSet(), 0)
	b2.NextEpisode()
	b2.PrevEpisode()
}

func TestTableRendering(t *testing.T) {
	b := New(testSet(), 0)
	if err := b.Select(0); err != nil {
		t.Fatal(err)
	}
	table := b.Table(0)
	for _, want := range []string{"patterns: 3 shown / 3 total", "app.Hot", "sometimes", "always", "never", ">"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	limited := b.Table(1)
	if !strings.Contains(limited, "... 2 more") {
		t.Errorf("limited table should mention elided rows:\n%s", limited)
	}
}

func TestEpisodeListAndSketches(t *testing.T) {
	b := New(testSet(), 0)
	if got := b.EpisodeList(); !strings.Contains(got, "no pattern selected") {
		t.Errorf("unselected episode list = %q", got)
	}
	if _, ok := b.SketchSVG(); ok {
		t.Error("sketch without selection")
	}
	if err := b.Select(0); err != nil {
		t.Fatal(err)
	}
	list := b.EpisodeList()
	if !strings.Contains(list, "PERCEPTIBLE") {
		t.Errorf("episode list should flag perceptible episodes:\n%s", list)
	}
	if !strings.Contains(list, "t/0") {
		t.Errorf("episode list should name the session:\n%s", list)
	}
	svg, ok := b.SketchSVG()
	if !ok || !strings.Contains(svg, "<svg") {
		t.Error("SVG sketch failed")
	}
	txt, ok := b.SketchText()
	if !ok || !strings.Contains(txt, "dispatch") {
		t.Error("text sketch failed")
	}
}

func TestSortKeyParse(t *testing.T) {
	for _, k := range []SortKey{SortByCount, SortByTotalLag, SortByMaxLag, SortByAvgLag} {
		got, err := ParseSortKey(k.String())
		if err != nil || got != k {
			t.Errorf("round trip %v failed: %v %v", k, got, err)
		}
	}
	if _, err := ParseSortKey("bogus"); err == nil {
		t.Error("bogus sort key accepted")
	}
	if SortKey(9).String() != "sortkey(9)" {
		t.Error("unknown sort key name")
	}
}
