// Package treebuild reconstructs LagAlyzer's in-memory session
// representation (package trace) from a LiLa record stream (package
// lila).
//
// The reconstruction follows Section II-A of the paper: every interval
// type except GC corresponds to a method call/return pair, so a
// per-thread stack suffices to rebuild each thread's properly nested
// interval tree. GC brackets are global — because a stop-the-world
// collection halts every thread, the finished GC interval is copied
// into the interval tree of every thread that was inside an interval
// at the time, and always recorded session-wide.
//
// Top-level Dispatch intervals become episodes. Episodes shorter than
// the filter threshold are dropped and counted, mirroring the tracing
// tool's own 3 ms filter (LagAlyzer "never gets to see such episodes,
// it only is able to see how many such short episodes occurred").
package treebuild

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"lagalyzer/internal/lila"
	"lagalyzer/internal/trace"
)

// ErrSessionTooLarge is returned (wrapped) when a session's estimated
// in-memory size exceeds Options.Limits.MaxSessionBytes. Callers that
// can degrade — lagreport's trace loader falls back to the streaming
// analyzer — test for it with errors.Is.
var ErrSessionTooLarge = errors.New("treebuild: session exceeds memory budget")

// Diagnostics reports recoverable oddities found while rebuilding a
// session. They do not fail the build; real profilers produce them
// (e.g. threads that die with open intervals at session end are
// reported by LiLa, and samples can race the GC bracket notifications).
type Diagnostics struct {
	// OrphanTopLevel counts completed top-level intervals that were
	// not dispatches; they belong to no episode and are dropped.
	OrphanTopLevel int
	// SamplesDuringGC counts samples time-stamped inside a GC bracket
	// (the sampler should be stopped with the rest of the world).
	SamplesDuringGC int
	// UndeclaredThreads counts threads that appeared in call or
	// sample records without a preceding thread declaration; they are
	// registered with a synthesized name.
	UndeclaredThreads int
	// FilteredEpisodes counts traced episodes dropped by the filter
	// threshold on the analysis side (in addition to the profiler's
	// own ShortCount).
	FilteredEpisodes int

	// The remaining fields are only ever non-zero under
	// Options.Lenient; a strict build fails instead.

	// SkippedRecords counts records the lenient builder dropped
	// because they were inconsistent with the session state (returns
	// without calls, out-of-order times, nested GC brackets, ...).
	SkippedRecords int
	// FirstSkipError describes the first record skipped.
	FirstSkipError string
	// DroppedOpenIntervals counts intervals still open when a
	// truncated stream ended; the episodes they belong to are lost.
	DroppedOpenIntervals int
	// DroppedEpisodes counts completed episodes discarded because the
	// salvaged timeline pushed them outside the session bounds.
	DroppedEpisodes int
	// SynthesizedEnd is set when the stream had no end record and the
	// lenient builder closed the session at the last seen time stamp.
	SynthesizedEnd bool
}

// Degraded reports whether the lenient builder had to drop anything.
func (d *Diagnostics) Degraded() bool {
	return d != nil && (d.SkippedRecords > 0 || d.DroppedOpenIntervals > 0 ||
		d.DroppedEpisodes > 0 || d.SynthesizedEnd)
}

// Options configure a session build beyond the fail-stop defaults.
type Options struct {
	// Lenient switches the builder from fail-stop to best-effort: an
	// inconsistent record is skipped (and counted) instead of failing
	// the build, and a stream that ends without its end record yields
	// the session prefix with a synthesized end instead of an error.
	// Pair it with a salvage-mode lila reader to ingest damaged
	// traces end to end.
	Lenient bool
	// Limits bound the rebuilt session's estimated memory
	// (MaxSessionBytes); zero fields take lila.DefaultLimits values.
	Limits lila.Limits
}

// Build consumes the record stream of r until its end record and
// reconstructs the session.
func Build(r lila.Reader) (*trace.Session, *Diagnostics, error) {
	return BuildOptions(r, Options{})
}

// BuildOptions is Build with explicit options.
func BuildOptions(r lila.Reader, o Options) (*trace.Session, *Diagnostics, error) {
	b := newBuilder(r.Header(), o)
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		if err := b.feed(rec); err != nil {
			return nil, nil, err
		}
	}
	return b.finish()
}

// BuildRecords reconstructs a session from an in-memory record slice.
func BuildRecords(h lila.Header, recs []*lila.Record) (*trace.Session, *Diagnostics, error) {
	return BuildRecordsOptions(h, recs, Options{})
}

// BuildRecordsOptions is BuildRecords with explicit options.
func BuildRecordsOptions(h lila.Header, recs []*lila.Record, o Options) (*trace.Session, *Diagnostics, error) {
	b := newBuilder(h, o)
	for _, rec := range recs {
		if err := b.feed(rec); err != nil {
			return nil, nil, err
		}
	}
	return b.finish()
}

// ReadSession reads a trace in either encoding from rd and rebuilds
// the session, discarding diagnostics. It is the one-call path used by
// the command-line tools.
func ReadSession(rd io.Reader) (*trace.Session, error) {
	s, _, err := ReadSessionOptions(rd, lila.ReaderOptions{}, Options{})
	return s, err
}

// SessionHealth bundles the per-file damage accounting from a lenient
// ingest: what the salvage reader dropped on the wire and what the
// lenient builder dropped while rebuilding. Either field may be nil
// (strict reader / strict build).
type SessionHealth struct {
	Salvage *lila.SalvageReport `json:"salvage,omitempty"`
	Diag    *Diagnostics        `json:"diagnostics,omitempty"`
}

// Degraded reports whether anything was lost on the way in.
func (h *SessionHealth) Degraded() bool {
	return h != nil && (h.Salvage.Damaged() || h.Diag.Degraded())
}

// ReadSessionOptions reads a trace from rd with ro applied to the
// decoder and o applied to the rebuild, returning the session together
// with its ingest health. On error the health (possibly partial) is
// still returned when available so callers can attribute the failure.
func ReadSessionOptions(rd io.Reader, ro lila.ReaderOptions, o Options) (*trace.Session, *SessionHealth, error) {
	lr, err := lila.NewReaderOptions(rd, ro)
	if err != nil {
		return nil, nil, err
	}
	s, diag, err := BuildOptions(lr, o)
	h := &SessionHealth{Salvage: lila.SalvageOf(lr), Diag: diag}
	return s, h, err
}

type builder struct {
	h      lila.Header
	opts   Options
	s      *trace.Session
	slab   trace.Slab // arena behind every Interval/Episode/tick the build creates
	diag   Diagnostics
	stacks map[trace.ThreadID][]*trace.Interval
	known  map[trace.ThreadID]bool
	gc     *trace.Interval // open GC bracket, nil outside collections
	last   trace.Time
	ended  bool
	est    int64 // estimated session bytes, checked against MaxSessionBytes
}

// Rough per-object costs for the session memory estimate. They only
// need to be the right order of magnitude: the guard exists to catch
// sessions that would balloon to gigabytes, not to meter allocations.
const (
	estIntervalBytes = 160 // Interval struct + child slice slot + episode overhead
	estFrameBytes    = 48  // Frame struct + interned string headers
	estSampleBytes   = 96  // ThreadSample + tick bookkeeping
	estThreadBytes   = 128 // ThreadInfo + map entries
)

func newBuilder(h lila.Header, o Options) *builder {
	o.Limits = o.Limits.WithDefaults()
	return &builder{
		h:    h,
		opts: o,
		s: &trace.Session{
			App:             h.App,
			ID:              h.SessionID,
			Start:           h.Start,
			GUIThread:       h.GUIThread,
			FilterThreshold: h.FilterThreshold,
			SamplePeriod:    h.SamplePeriod,
		},
		stacks: make(map[trace.ThreadID][]*trace.Interval),
		known:  make(map[trace.ThreadID]bool),
	}
}

// charge adds n bytes to the session size estimate and trips the
// memory guard when the budget is exceeded. The guard is fatal even
// under Lenient — skipping records would silently bias the analysis —
// but callers can errors.Is for ErrSessionTooLarge and fall back to
// the streaming analyzer.
func (b *builder) charge(n int64) error {
	b.est += n
	if b.est > b.opts.Limits.MaxSessionBytes {
		return fmt.Errorf("%w: estimated %d bytes over budget %d",
			ErrSessionTooLarge, b.est, b.opts.Limits.MaxSessionBytes)
	}
	return nil
}

// feed routes one record through add, applying the lenient skip
// policy: inconsistent records are counted and dropped instead of
// failing the build. Resource-guard trips stay fatal either way.
func (b *builder) feed(rec *lila.Record) error {
	err := b.add(rec)
	if err == nil || !b.opts.Lenient || errors.Is(err, ErrSessionTooLarge) {
		return err
	}
	b.diag.SkippedRecords++
	if b.diag.FirstSkipError == "" {
		b.diag.FirstSkipError = err.Error()
	}
	return nil
}

func (b *builder) ensureThread(id trace.ThreadID) {
	if b.known[id] {
		return
	}
	b.known[id] = true
	b.diag.UndeclaredThreads++
	b.s.Threads = append(b.s.Threads, trace.ThreadInfo{ID: id, Name: fmt.Sprintf("thread-%d", id)})
}

func (b *builder) checkTime(t trace.Time) error {
	if t < b.last {
		return fmt.Errorf("treebuild: record at %v after record at %v: stream not time-ordered", t, b.last)
	}
	b.last = t
	return nil
}

func (b *builder) add(rec *lila.Record) error {
	if b.ended {
		return fmt.Errorf("treebuild: record after end record")
	}
	switch rec.Type {
	case lila.RecThread:
		if b.known[rec.Thread] {
			return fmt.Errorf("treebuild: duplicate declaration of thread %d", rec.Thread)
		}
		b.known[rec.Thread] = true
		b.s.Threads = append(b.s.Threads, trace.ThreadInfo{ID: rec.Thread, Name: rec.Name, Daemon: rec.Daemon})
		if err := b.charge(estThreadBytes + int64(len(rec.Name))); err != nil {
			return err
		}

	case lila.RecCall:
		if err := b.checkTime(rec.Time); err != nil {
			return err
		}
		if err := b.charge(estIntervalBytes); err != nil {
			return err
		}
		b.ensureThread(rec.Thread)
		iv := b.slab.Interval()
		iv.Kind = rec.Kind
		iv.Class = rec.Class
		iv.Method = rec.Method
		iv.Start = rec.Time
		iv.End = -1 // patched by the matching return
		b.stacks[rec.Thread] = append(b.stacks[rec.Thread], iv)

	case lila.RecReturn:
		if err := b.checkTime(rec.Time); err != nil {
			return err
		}
		stack := b.stacks[rec.Thread]
		if len(stack) == 0 {
			return fmt.Errorf("treebuild: return on thread %d at %v with no open interval", rec.Thread, rec.Time)
		}
		iv := stack[len(stack)-1]
		b.stacks[rec.Thread] = stack[:len(stack)-1]
		iv.End = rec.Time
		if iv.End < iv.Start {
			return fmt.Errorf("treebuild: interval %s on thread %d ends (%v) before it starts (%v)",
				iv.Qualified(), rec.Thread, iv.End, iv.Start)
		}
		if len(b.stacks[rec.Thread]) > 0 {
			parent := b.stacks[rec.Thread][len(b.stacks[rec.Thread])-1]
			parent.Children = append(parent.Children, iv)
			return nil
		}
		// Completed top-level interval.
		if iv.Kind != trace.KindDispatch {
			b.diag.OrphanTopLevel++
			return nil
		}
		if iv.Dur() < b.h.FilterThreshold {
			b.diag.FilteredEpisodes++
			b.s.ShortCount++
			return nil
		}
		ep := b.slab.Episode()
		ep.Thread = rec.Thread
		ep.Root = iv
		b.s.Episodes = append(b.s.Episodes, ep)

	case lila.RecGCStart:
		if err := b.checkTime(rec.Time); err != nil {
			return err
		}
		if b.gc != nil {
			return fmt.Errorf("treebuild: nested gcstart at %v (collection open since %v)", rec.Time, b.gc.Start)
		}
		b.gc = b.slab.Interval()
		b.gc.Kind = trace.KindGC
		b.gc.Start = rec.Time
		b.gc.End = -1
		b.gc.Major = rec.Major

	case lila.RecGCEnd:
		if err := b.checkTime(rec.Time); err != nil {
			return err
		}
		if b.gc == nil {
			return fmt.Errorf("treebuild: gcend at %v without gcstart", rec.Time)
		}
		b.gc.End = rec.Time
		// A GC stops all threads: add a copy of the interval to the
		// tree of every thread that was inside an interval.
		copies := int64(1)
		for _, stack := range b.stacks {
			if len(stack) == 0 {
				continue
			}
			top := stack[len(stack)-1]
			// The open bracket is childless, so a shallow slab copy is a
			// full clone.
			cp := b.slab.Interval()
			*cp = *b.gc
			top.Children = append(top.Children, cp)
			copies++
		}
		b.s.GCs = append(b.s.GCs, b.gc)
		b.gc = nil
		if err := b.charge(copies * estIntervalBytes); err != nil {
			return err
		}

	case lila.RecSample:
		if err := b.checkTime(rec.Time); err != nil {
			return err
		}
		if err := b.charge(estSampleBytes + int64(len(rec.Stack))*estFrameBytes); err != nil {
			return err
		}
		b.ensureThread(rec.Thread)
		if b.gc != nil {
			b.diag.SamplesDuringGC++
		}
		ts := trace.ThreadSample{Thread: rec.Thread, State: rec.State, Stack: rec.Stack}
		if n := len(b.s.Ticks); n > 0 && b.s.Ticks[n-1].Time == rec.Time {
			b.s.Ticks[n-1].Threads = b.slab.AppendSample(b.s.Ticks[n-1].Threads, ts)
		} else {
			b.s.Ticks = append(b.s.Ticks, trace.SampleTick{Time: rec.Time, Threads: b.slab.AppendSample(nil, ts)})
		}

	case lila.RecEnd:
		if err := b.checkTime(rec.Time); err != nil {
			return err
		}
		for id, stack := range b.stacks {
			if len(stack) > 0 {
				if !b.opts.Lenient {
					return fmt.Errorf("treebuild: thread %d has %d open interval(s) at session end (innermost %s)",
						id, len(stack), stack[len(stack)-1].Qualified())
				}
				// Damaged trace lost the returns; the episodes those
				// intervals belonged to are unfinishable.
				b.diag.DroppedOpenIntervals += len(stack)
				delete(b.stacks, id)
			}
		}
		if b.gc != nil {
			if !b.opts.Lenient {
				return fmt.Errorf("treebuild: collection open at session end")
			}
			b.diag.DroppedOpenIntervals++
			b.gc = nil
		}
		b.s.End = rec.Time
		b.s.ShortCount += rec.Count
		b.ended = true

	default:
		return fmt.Errorf("treebuild: unknown record type %d", rec.Type)
	}
	return nil
}

func (b *builder) finish() (*trace.Session, *Diagnostics, error) {
	if !b.ended {
		if !b.opts.Lenient {
			return nil, nil, fmt.Errorf("treebuild: record stream had no end record")
		}
		// Truncated stream: close the session at the last time stamp we
		// saw and drop whatever was still open.
		b.diag.SynthesizedEnd = true
		for id, stack := range b.stacks {
			if len(stack) > 0 {
				b.diag.DroppedOpenIntervals += len(stack)
				delete(b.stacks, id)
			}
		}
		if b.gc != nil {
			b.diag.DroppedOpenIntervals++
			b.gc = nil
		}
		end := b.last
		if end < b.s.Start {
			end = b.s.Start
		}
		b.s.End = end
	}
	if b.opts.Lenient {
		// A salvage gap swallows time deltas with it (binary times are
		// delta-coded), which can shift later absolute times ahead of
		// the session start; drop episodes the shifted timeline pushed
		// outside the session bounds rather than fail validation.
		kept := b.s.Episodes[:0]
		for _, e := range b.s.Episodes {
			if e.Start() < b.s.Start || e.End() > b.s.End {
				b.diag.DroppedEpisodes++
				continue
			}
			kept = append(kept, e)
		}
		b.s.Episodes = kept
		keptGC := b.s.GCs[:0]
		for _, gc := range b.s.GCs {
			if gc.Start < b.s.Start || gc.End > b.s.End {
				b.diag.DroppedEpisodes++
				continue
			}
			keptGC = append(keptGC, gc)
		}
		b.s.GCs = keptGC
	}
	sort.SliceStable(b.s.Episodes, func(i, j int) bool {
		return b.s.Episodes[i].Start() < b.s.Episodes[j].Start()
	})
	for i, e := range b.s.Episodes {
		e.Index = i
	}
	if err := b.s.Validate(); err != nil {
		return nil, nil, fmt.Errorf("treebuild: rebuilt session invalid: %w", err)
	}
	diag := b.diag
	return b.s, &diag, nil
}
