// Package treebuild reconstructs LagAlyzer's in-memory session
// representation (package trace) from a LiLa record stream (package
// lila).
//
// The reconstruction follows Section II-A of the paper: every interval
// type except GC corresponds to a method call/return pair, so a
// per-thread stack suffices to rebuild each thread's properly nested
// interval tree. GC brackets are global — because a stop-the-world
// collection halts every thread, the finished GC interval is copied
// into the interval tree of every thread that was inside an interval
// at the time, and always recorded session-wide.
//
// Top-level Dispatch intervals become episodes. Episodes shorter than
// the filter threshold are dropped and counted, mirroring the tracing
// tool's own 3 ms filter (LagAlyzer "never gets to see such episodes,
// it only is able to see how many such short episodes occurred").
package treebuild

import (
	"fmt"
	"io"
	"sort"

	"lagalyzer/internal/lila"
	"lagalyzer/internal/trace"
)

// Diagnostics reports recoverable oddities found while rebuilding a
// session. They do not fail the build; real profilers produce them
// (e.g. threads that die with open intervals at session end are
// reported by LiLa, and samples can race the GC bracket notifications).
type Diagnostics struct {
	// OrphanTopLevel counts completed top-level intervals that were
	// not dispatches; they belong to no episode and are dropped.
	OrphanTopLevel int
	// SamplesDuringGC counts samples time-stamped inside a GC bracket
	// (the sampler should be stopped with the rest of the world).
	SamplesDuringGC int
	// UndeclaredThreads counts threads that appeared in call or
	// sample records without a preceding thread declaration; they are
	// registered with a synthesized name.
	UndeclaredThreads int
	// FilteredEpisodes counts traced episodes dropped by the filter
	// threshold on the analysis side (in addition to the profiler's
	// own ShortCount).
	FilteredEpisodes int
}

// Build consumes the record stream of r until its end record and
// reconstructs the session.
func Build(r lila.Reader) (*trace.Session, *Diagnostics, error) {
	b := newBuilder(r.Header())
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		if err := b.add(rec); err != nil {
			return nil, nil, err
		}
	}
	return b.finish()
}

// BuildRecords reconstructs a session from an in-memory record slice.
func BuildRecords(h lila.Header, recs []*lila.Record) (*trace.Session, *Diagnostics, error) {
	b := newBuilder(h)
	for _, rec := range recs {
		if err := b.add(rec); err != nil {
			return nil, nil, err
		}
	}
	return b.finish()
}

// ReadSession reads a trace in either encoding from rd and rebuilds
// the session, discarding diagnostics. It is the one-call path used by
// the command-line tools.
func ReadSession(rd io.Reader) (*trace.Session, error) {
	lr, err := lila.NewReader(rd)
	if err != nil {
		return nil, err
	}
	s, _, err := Build(lr)
	return s, err
}

type builder struct {
	h      lila.Header
	s      *trace.Session
	diag   Diagnostics
	stacks map[trace.ThreadID][]*trace.Interval
	known  map[trace.ThreadID]bool
	gc     *trace.Interval // open GC bracket, nil outside collections
	last   trace.Time
	ended  bool
}

func newBuilder(h lila.Header) *builder {
	return &builder{
		h: h,
		s: &trace.Session{
			App:             h.App,
			ID:              h.SessionID,
			Start:           h.Start,
			GUIThread:       h.GUIThread,
			FilterThreshold: h.FilterThreshold,
			SamplePeriod:    h.SamplePeriod,
		},
		stacks: make(map[trace.ThreadID][]*trace.Interval),
		known:  make(map[trace.ThreadID]bool),
	}
}

func (b *builder) ensureThread(id trace.ThreadID) {
	if b.known[id] {
		return
	}
	b.known[id] = true
	b.diag.UndeclaredThreads++
	b.s.Threads = append(b.s.Threads, trace.ThreadInfo{ID: id, Name: fmt.Sprintf("thread-%d", id)})
}

func (b *builder) checkTime(t trace.Time) error {
	if t < b.last {
		return fmt.Errorf("treebuild: record at %v after record at %v: stream not time-ordered", t, b.last)
	}
	b.last = t
	return nil
}

func (b *builder) add(rec *lila.Record) error {
	if b.ended {
		return fmt.Errorf("treebuild: record after end record")
	}
	switch rec.Type {
	case lila.RecThread:
		if b.known[rec.Thread] {
			return fmt.Errorf("treebuild: duplicate declaration of thread %d", rec.Thread)
		}
		b.known[rec.Thread] = true
		b.s.Threads = append(b.s.Threads, trace.ThreadInfo{ID: rec.Thread, Name: rec.Name, Daemon: rec.Daemon})

	case lila.RecCall:
		if err := b.checkTime(rec.Time); err != nil {
			return err
		}
		b.ensureThread(rec.Thread)
		iv := &trace.Interval{
			Kind:   rec.Kind,
			Class:  rec.Class,
			Method: rec.Method,
			Start:  rec.Time,
			End:    -1, // patched by the matching return
		}
		b.stacks[rec.Thread] = append(b.stacks[rec.Thread], iv)

	case lila.RecReturn:
		if err := b.checkTime(rec.Time); err != nil {
			return err
		}
		stack := b.stacks[rec.Thread]
		if len(stack) == 0 {
			return fmt.Errorf("treebuild: return on thread %d at %v with no open interval", rec.Thread, rec.Time)
		}
		iv := stack[len(stack)-1]
		b.stacks[rec.Thread] = stack[:len(stack)-1]
		iv.End = rec.Time
		if iv.End < iv.Start {
			return fmt.Errorf("treebuild: interval %s on thread %d ends (%v) before it starts (%v)",
				iv.Qualified(), rec.Thread, iv.End, iv.Start)
		}
		if len(b.stacks[rec.Thread]) > 0 {
			parent := b.stacks[rec.Thread][len(b.stacks[rec.Thread])-1]
			parent.Children = append(parent.Children, iv)
			return nil
		}
		// Completed top-level interval.
		if iv.Kind != trace.KindDispatch {
			b.diag.OrphanTopLevel++
			return nil
		}
		if iv.Dur() < b.h.FilterThreshold {
			b.diag.FilteredEpisodes++
			b.s.ShortCount++
			return nil
		}
		b.s.Episodes = append(b.s.Episodes, &trace.Episode{Thread: rec.Thread, Root: iv})

	case lila.RecGCStart:
		if err := b.checkTime(rec.Time); err != nil {
			return err
		}
		if b.gc != nil {
			return fmt.Errorf("treebuild: nested gcstart at %v (collection open since %v)", rec.Time, b.gc.Start)
		}
		b.gc = &trace.Interval{Kind: trace.KindGC, Start: rec.Time, End: -1, Major: rec.Major}

	case lila.RecGCEnd:
		if err := b.checkTime(rec.Time); err != nil {
			return err
		}
		if b.gc == nil {
			return fmt.Errorf("treebuild: gcend at %v without gcstart", rec.Time)
		}
		b.gc.End = rec.Time
		// A GC stops all threads: add a copy of the interval to the
		// tree of every thread that was inside an interval.
		for _, stack := range b.stacks {
			if len(stack) == 0 {
				continue
			}
			top := stack[len(stack)-1]
			top.Children = append(top.Children, b.gc.Clone())
		}
		b.s.GCs = append(b.s.GCs, b.gc)
		b.gc = nil

	case lila.RecSample:
		if err := b.checkTime(rec.Time); err != nil {
			return err
		}
		b.ensureThread(rec.Thread)
		if b.gc != nil {
			b.diag.SamplesDuringGC++
		}
		ts := trace.ThreadSample{Thread: rec.Thread, State: rec.State, Stack: rec.Stack}
		if n := len(b.s.Ticks); n > 0 && b.s.Ticks[n-1].Time == rec.Time {
			b.s.Ticks[n-1].Threads = append(b.s.Ticks[n-1].Threads, ts)
		} else {
			b.s.Ticks = append(b.s.Ticks, trace.SampleTick{Time: rec.Time, Threads: []trace.ThreadSample{ts}})
		}

	case lila.RecEnd:
		if err := b.checkTime(rec.Time); err != nil {
			return err
		}
		for id, stack := range b.stacks {
			if len(stack) > 0 {
				return fmt.Errorf("treebuild: thread %d has %d open interval(s) at session end (innermost %s)",
					id, len(stack), stack[len(stack)-1].Qualified())
			}
		}
		if b.gc != nil {
			return fmt.Errorf("treebuild: collection open at session end")
		}
		b.s.End = rec.Time
		b.s.ShortCount += rec.Count
		b.ended = true

	default:
		return fmt.Errorf("treebuild: unknown record type %d", rec.Type)
	}
	return nil
}

func (b *builder) finish() (*trace.Session, *Diagnostics, error) {
	if !b.ended {
		return nil, nil, fmt.Errorf("treebuild: record stream had no end record")
	}
	sort.SliceStable(b.s.Episodes, func(i, j int) bool {
		return b.s.Episodes[i].Start() < b.s.Episodes[j].Start()
	})
	for i, e := range b.s.Episodes {
		e.Index = i
	}
	if err := b.s.Validate(); err != nil {
		return nil, nil, fmt.Errorf("treebuild: rebuilt session invalid: %w", err)
	}
	diag := b.diag
	return b.s, &diag, nil
}
