package treebuild

import (
	"bytes"
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"

	"lagalyzer/internal/lila"
	"lagalyzer/internal/trace"
)

func ms(v float64) trace.Time { return trace.Time(trace.Ms(v)) }

func header() lila.Header {
	return lila.Header{
		App:             "App",
		SessionID:       1,
		GUIThread:       1,
		FilterThreshold: trace.DefaultFilterThreshold,
		SamplePeriod:    10 * trace.Millisecond,
	}
}

func TestBuildSimpleEpisode(t *testing.T) {
	recs := []*lila.Record{
		{Type: lila.RecThread, Thread: 1, Name: "edt"},
		{Type: lila.RecCall, Time: ms(100), Thread: 1, Kind: trace.KindDispatch},
		{Type: lila.RecCall, Time: ms(100), Thread: 1, Kind: trace.KindListener, Class: "app.B", Method: "on"},
		{Type: lila.RecCall, Time: ms(120), Thread: 1, Kind: trace.KindPaint, Class: "x.P", Method: "paint"},
		{Type: lila.RecReturn, Time: ms(180), Thread: 1},
		{Type: lila.RecReturn, Time: ms(200), Thread: 1},
		{Type: lila.RecReturn, Time: ms(200), Thread: 1},
		{Type: lila.RecEnd, Time: ms(1000), Count: 7},
	}
	s, diag, err := BuildRecords(header(), recs)
	if err != nil {
		t.Fatalf("BuildRecords: %v", err)
	}
	if len(s.Episodes) != 1 {
		t.Fatalf("got %d episodes, want 1", len(s.Episodes))
	}
	e := s.Episodes[0]
	if e.Dur() != trace.Ms(100) {
		t.Errorf("episode duration = %v, want 100ms", e.Dur())
	}
	if got := e.Root.Descendants(); got != 2 {
		t.Errorf("descendants = %d, want 2", got)
	}
	listener := e.Root.Children[0]
	if listener.Kind != trace.KindListener || listener.Class != "app.B" {
		t.Errorf("first child = %+v", listener)
	}
	if len(listener.Children) != 1 || listener.Children[0].Kind != trace.KindPaint {
		t.Errorf("nested paint missing: %+v", listener.Children)
	}
	if s.ShortCount != 7 {
		t.Errorf("ShortCount = %d, want 7 (from end record)", s.ShortCount)
	}
	if s.End != ms(1000) {
		t.Errorf("End = %v", s.End)
	}
	if *diag != (Diagnostics{}) {
		t.Errorf("diagnostics = %+v, want zero", *diag)
	}
}

func TestFilterDropsShortEpisodes(t *testing.T) {
	recs := []*lila.Record{
		{Type: lila.RecThread, Thread: 1, Name: "edt"},
		{Type: lila.RecCall, Time: ms(10), Thread: 1, Kind: trace.KindDispatch},
		{Type: lila.RecReturn, Time: ms(11), Thread: 1}, // 1 ms < 3 ms
		{Type: lila.RecCall, Time: ms(20), Thread: 1, Kind: trace.KindDispatch},
		{Type: lila.RecReturn, Time: ms(30), Thread: 1}, // 10 ms: kept
		{Type: lila.RecEnd, Time: ms(100), Count: 5},
	}
	s, diag, err := BuildRecords(header(), recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Episodes) != 1 {
		t.Fatalf("got %d episodes, want 1", len(s.Episodes))
	}
	if s.ShortCount != 6 {
		t.Errorf("ShortCount = %d, want 6 (5 from profiler + 1 filtered here)", s.ShortCount)
	}
	if diag.FilteredEpisodes != 1 {
		t.Errorf("FilteredEpisodes = %d, want 1", diag.FilteredEpisodes)
	}
}

func TestGCBroadcastIntoOpenIntervals(t *testing.T) {
	recs := []*lila.Record{
		{Type: lila.RecThread, Thread: 1, Name: "edt"},
		{Type: lila.RecThread, Thread: 2, Name: "worker"},
		// EDT inside an episode; worker inside a top-level native call.
		{Type: lila.RecCall, Time: ms(0), Thread: 1, Kind: trace.KindDispatch},
		{Type: lila.RecCall, Time: ms(0), Thread: 2, Kind: trace.KindNative, Class: "n.C", Method: "m"},
		{Type: lila.RecGCStart, Time: ms(10), Major: true},
		{Type: lila.RecGCEnd, Time: ms(50)},
		{Type: lila.RecReturn, Time: ms(60), Thread: 2},
		{Type: lila.RecReturn, Time: ms(100), Thread: 1},
		// Second GC while both threads are idle: session-wide only.
		{Type: lila.RecGCStart, Time: ms(150)},
		{Type: lila.RecGCEnd, Time: ms(160)},
		{Type: lila.RecEnd, Time: ms(200)},
	}
	s, diag, err := BuildRecords(header(), recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.GCs) != 2 {
		t.Fatalf("session GCs = %d, want 2", len(s.GCs))
	}
	if !s.GCs[0].Major || s.GCs[1].Major {
		t.Error("major flags lost")
	}
	// The episode tree must contain a GC copy.
	ep := s.Episodes[0]
	gc := ep.Root.FindKind(trace.KindGC)
	if gc == nil {
		t.Fatal("episode tree has no GC copy")
	}
	if gc.Start != ms(10) || gc.End != ms(50) {
		t.Errorf("GC copy spans [%v,%v]", gc.Start, gc.End)
	}
	if gc == s.GCs[0] {
		t.Error("episode GC must be a copy, not the session-wide instance")
	}
	// The worker's top-level native interval is an orphan (dropped),
	// so the second GC appears nowhere else.
	if diag.OrphanTopLevel != 1 {
		t.Errorf("OrphanTopLevel = %d, want 1", diag.OrphanTopLevel)
	}
}

func TestSampleTickGrouping(t *testing.T) {
	recs := []*lila.Record{
		{Type: lila.RecThread, Thread: 1, Name: "edt"},
		{Type: lila.RecThread, Thread: 2, Name: "w"},
		{Type: lila.RecSample, Time: ms(10), Thread: 1, State: trace.StateRunnable},
		{Type: lila.RecSample, Time: ms(10), Thread: 2, State: trace.StateWaiting},
		{Type: lila.RecSample, Time: ms(20), Thread: 1, State: trace.StateBlocked},
		{Type: lila.RecEnd, Time: ms(100)},
	}
	s, _, err := BuildRecords(header(), recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Ticks) != 2 {
		t.Fatalf("ticks = %d, want 2", len(s.Ticks))
	}
	if len(s.Ticks[0].Threads) != 2 || len(s.Ticks[1].Threads) != 1 {
		t.Errorf("tick sizes = %d,%d; want 2,1", len(s.Ticks[0].Threads), len(s.Ticks[1].Threads))
	}
	if s.Ticks[0].Runnable() != 1 {
		t.Errorf("tick 0 runnable = %d, want 1", s.Ticks[0].Runnable())
	}
}

func TestDiagnostics(t *testing.T) {
	recs := []*lila.Record{
		// Thread 5 never declared.
		{Type: lila.RecCall, Time: ms(0), Thread: 5, Kind: trace.KindDispatch},
		{Type: lila.RecGCStart, Time: ms(10)},
		// Sample inside a GC bracket.
		{Type: lila.RecSample, Time: ms(15), Thread: 5, State: trace.StateRunnable},
		{Type: lila.RecGCEnd, Time: ms(20)},
		{Type: lila.RecReturn, Time: ms(30), Thread: 5},
		{Type: lila.RecEnd, Time: ms(100)},
	}
	s, diag, err := BuildRecords(header(), recs)
	if err != nil {
		t.Fatal(err)
	}
	if diag.UndeclaredThreads != 1 {
		t.Errorf("UndeclaredThreads = %d, want 1", diag.UndeclaredThreads)
	}
	if diag.SamplesDuringGC != 1 {
		t.Errorf("SamplesDuringGC = %d, want 1", diag.SamplesDuringGC)
	}
	info, ok := s.ThreadByID(5)
	if !ok || info.Name != "thread-5" {
		t.Errorf("synthesized thread = %+v, %v", info, ok)
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name string
		recs []*lila.Record
		want string
	}{
		{
			"unmatched return",
			[]*lila.Record{{Type: lila.RecReturn, Time: ms(1), Thread: 1}},
			"no open interval",
		},
		{
			"time going backwards",
			[]*lila.Record{
				{Type: lila.RecCall, Time: ms(10), Thread: 1, Kind: trace.KindDispatch},
				{Type: lila.RecReturn, Time: ms(5), Thread: 1},
			},
			"not time-ordered",
		},
		{
			"nested gc",
			[]*lila.Record{
				{Type: lila.RecGCStart, Time: ms(1)},
				{Type: lila.RecGCStart, Time: ms(2)},
			},
			"nested gcstart",
		},
		{
			"gcend without start",
			[]*lila.Record{{Type: lila.RecGCEnd, Time: ms(1)}},
			"without gcstart",
		},
		{
			"open interval at end",
			[]*lila.Record{
				{Type: lila.RecCall, Time: ms(1), Thread: 1, Kind: trace.KindDispatch},
				{Type: lila.RecEnd, Time: ms(10)},
			},
			"open interval",
		},
		{
			"open gc at end",
			[]*lila.Record{
				{Type: lila.RecGCStart, Time: ms(1)},
				{Type: lila.RecEnd, Time: ms(10)},
			},
			"collection open",
		},
		{
			"record after end",
			[]*lila.Record{
				{Type: lila.RecEnd, Time: ms(10)},
				{Type: lila.RecGCStart, Time: ms(20)},
			},
			"after end record",
		},
		{
			"no end record",
			[]*lila.Record{{Type: lila.RecThread, Thread: 1, Name: "t"}},
			"no end record",
		},
		{
			"duplicate thread",
			[]*lila.Record{
				{Type: lila.RecThread, Thread: 1, Name: "a"},
				{Type: lila.RecThread, Thread: 1, Name: "b"},
			},
			"duplicate declaration",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := BuildRecords(header(), tc.recs)
			if err == nil {
				t.Fatal("BuildRecords accepted a malformed stream")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// randomSession builds a random but well-formed session for round-trip
// testing: random interval trees on the GUI thread with idle gaps,
// GCs both inside and outside episodes, and periodic samples.
func randomSession(r *rand.Rand) *trace.Session {
	s := &trace.Session{
		App:             "Rand",
		ID:              3,
		GUIThread:       1,
		FilterThreshold: trace.DefaultFilterThreshold,
		SamplePeriod:    10 * trace.Millisecond,
		Threads: []trace.ThreadInfo{
			{ID: 1, Name: "edt"},
			{ID: 2, Name: "bg", Daemon: true},
		},
	}
	now := trace.Time(0)
	var genChildren func(parent *trace.Interval, depth int)
	genChildren = func(parent *trace.Interval, depth int) {
		if depth > 4 {
			return
		}
		cursor := parent.Start
		for cursor < parent.End && r.IntN(3) > 0 {
			gap := trace.Dur(r.Int64N(int64(trace.Ms(5))))
			cursor = cursor.Add(gap)
			remain := parent.End.Sub(cursor)
			if remain <= 0 {
				break
			}
			dur := trace.Dur(r.Int64N(int64(remain))) / 2
			if dur <= 0 {
				break
			}
			kinds := []trace.Kind{trace.KindListener, trace.KindPaint, trace.KindNative, trace.KindAsync}
			child := trace.NewInterval(kinds[r.IntN(len(kinds))], "c.C", "m", cursor, dur)
			parent.AddChild(child)
			genChildren(child, depth+1)
			cursor = child.End
		}
	}
	for i := 0; i < 20; i++ {
		now = now.Add(trace.Dur(r.Int64N(int64(trace.Ms(50)))) + trace.Ms(1))
		dur := trace.Dur(r.Int64N(int64(trace.Ms(300)))) + trace.Ms(4)
		root := trace.NewInterval(trace.KindDispatch, "", "", now, dur)
		genChildren(root, 0)
		s.Episodes = append(s.Episodes, &trace.Episode{Index: len(s.Episodes), Thread: 1, Root: root})
		now = root.End

		if r.IntN(4) == 0 {
			// GC after the episode, outside any interval.
			gcStart := now.Add(trace.Ms(0.5))
			gc := trace.NewGC(gcStart, trace.Ms(float64(1+r.IntN(20))), r.IntN(5) == 0)
			s.GCs = append(s.GCs, gc)
			now = gc.End
		}
	}
	s.End = now.Add(trace.Ms(100))
	for ts := trace.Time(trace.Ms(5)); ts < s.End; ts = ts.Add(10 * trace.Millisecond) {
		inGC := false
		for _, gc := range s.GCs {
			if gc.Contains(ts) {
				inGC = true
			}
		}
		if inGC {
			continue
		}
		s.Ticks = append(s.Ticks, trace.SampleTick{Time: ts, Threads: []trace.ThreadSample{
			{Thread: 1, State: trace.ThreadState(r.IntN(4)), Stack: []trace.Frame{{Class: "a.B", Method: "m"}}},
			{Thread: 2, State: trace.StateWaiting},
		}})
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

func TestRoundTripRandomSessions(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		r := rand.New(rand.NewPCG(seed, seed^0xdead))
		orig := randomSession(r)

		for _, format := range []lila.Format{lila.FormatText, lila.FormatBinary} {
			var buf bytes.Buffer
			if err := lila.WriteSession(&buf, format, orig); err != nil {
				t.Fatalf("seed %d %v: WriteSession: %v", seed, format, err)
			}
			got, err := ReadSession(&buf)
			if err != nil {
				t.Fatalf("seed %d %v: ReadSession: %v", seed, format, err)
			}
			if got.App != orig.App || got.ID != orig.ID || got.End != orig.End {
				t.Errorf("seed %d %v: header fields differ", seed, format)
			}
			if len(got.Episodes) != len(orig.Episodes) {
				t.Fatalf("seed %d %v: %d episodes, want %d", seed, format, len(got.Episodes), len(orig.Episodes))
			}
			for i := range orig.Episodes {
				if !reflect.DeepEqual(got.Episodes[i].Root, orig.Episodes[i].Root) {
					t.Fatalf("seed %d %v: episode %d differs:\n got %s\nwant %s",
						seed, format, i, got.Episodes[i].Root.Outline(), orig.Episodes[i].Root.Outline())
				}
			}
			if len(got.Ticks) != len(orig.Ticks) {
				t.Fatalf("seed %d %v: %d ticks, want %d", seed, format, len(got.Ticks), len(orig.Ticks))
			}
			if !reflect.DeepEqual(got.Ticks, orig.Ticks) {
				t.Errorf("seed %d %v: ticks differ", seed, format)
			}
			if len(got.GCs) != len(orig.GCs) {
				t.Fatalf("seed %d %v: %d GCs, want %d", seed, format, len(got.GCs), len(orig.GCs))
			}
			for i := range orig.GCs {
				if got.GCs[i].Start != orig.GCs[i].Start || got.GCs[i].End != orig.GCs[i].End || got.GCs[i].Major != orig.GCs[i].Major {
					t.Errorf("seed %d %v: GC %d differs", seed, format, i)
				}
			}
		}
	}
}

func TestRoundTripPreservesGCCopies(t *testing.T) {
	// A GC inside an episode must come back as an embedded copy.
	root := trace.NewInterval(trace.KindDispatch, "", "", ms(0), trace.Ms(100))
	nat := root.AddChild(trace.NewInterval(trace.KindNative, "n.D", "draw", ms(10), trace.Ms(60)))
	nat.AddChild(trace.NewGC(ms(20), trace.Ms(30), true))
	s := &trace.Session{
		App: "G", GUIThread: 1, Start: 0, End: ms(200),
		Threads:         []trace.ThreadInfo{{ID: 1, Name: "edt"}},
		Episodes:        []*trace.Episode{{Index: 0, Thread: 1, Root: root}},
		GCs:             []*trace.Interval{trace.NewGC(ms(20), trace.Ms(30), true)},
		FilterThreshold: trace.DefaultFilterThreshold,
	}
	var buf bytes.Buffer
	if err := lila.WriteSession(&buf, lila.FormatBinary, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSession(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gc := got.Episodes[0].Root.FindKind(trace.KindGC)
	if gc == nil {
		t.Fatal("GC copy lost in round trip")
	}
	if gc.Start != ms(20) || gc.End != ms(50) || !gc.Major {
		t.Errorf("GC copy = %+v", gc)
	}
	// And it must be nested inside the native call, where it occurred.
	parent := got.Episodes[0].Root.Children[0]
	if parent.Kind != trace.KindNative || len(parent.Children) != 1 || parent.Children[0].Kind != trace.KindGC {
		t.Errorf("GC not nested in native call:\n%s", got.Episodes[0].Root.Outline())
	}
}
