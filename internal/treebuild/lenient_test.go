package treebuild_test

import (
	"bytes"
	"errors"
	"testing"

	"lagalyzer/internal/lila"
	"lagalyzer/internal/trace"
	"lagalyzer/internal/treebuild"
)

func lenientRecs() (lila.Header, []*lila.Record) {
	h := lila.Header{App: "lenient", GUIThread: 1, SamplePeriod: trace.Ms(10)}
	return h, []*lila.Record{
		{Type: lila.RecThread, Thread: 1, Name: "edt"},
		{Type: lila.RecCall, Time: 10, Thread: 1, Kind: trace.KindDispatch},
		{Type: lila.RecReturn, Time: 20, Thread: 1},
		{Type: lila.RecCall, Time: 30, Thread: 1, Kind: trace.KindDispatch},
		{Type: lila.RecReturn, Time: 40, Thread: 1},
		{Type: lila.RecEnd, Time: 50},
	}
}

func TestLenientSkipsInconsistentRecords(t *testing.T) {
	h, recs := lenientRecs()
	// Splice in a return with no matching call and an out-of-order call.
	bad := append([]*lila.Record{}, recs[:3]...)
	bad = append(bad,
		&lila.Record{Type: lila.RecReturn, Time: 25, Thread: 2},
		&lila.Record{Type: lila.RecCall, Time: 5, Thread: 1, Kind: trace.KindDispatch},
	)
	bad = append(bad, recs[3:]...)

	if _, _, err := treebuild.BuildRecords(h, bad); err == nil {
		t.Fatal("strict build accepted inconsistent records")
	}
	s, diag, err := treebuild.BuildRecordsOptions(h, bad, treebuild.Options{Lenient: true})
	if err != nil {
		t.Fatalf("lenient build: %v", err)
	}
	if diag.SkippedRecords != 2 {
		t.Errorf("skipped %d records, want 2 (first: %s)", diag.SkippedRecords, diag.FirstSkipError)
	}
	if diag.FirstSkipError == "" {
		t.Error("no first-skip error recorded")
	}
	if !diag.Degraded() {
		t.Error("diagnostics not marked degraded")
	}
	if len(s.Episodes) != 2 {
		t.Errorf("got %d episodes, want 2", len(s.Episodes))
	}
}

func TestLenientSynthesizesEnd(t *testing.T) {
	h, recs := lenientRecs()
	cut := recs[:4] // ends inside the second episode, no end record

	if _, _, err := treebuild.BuildRecords(h, cut); err == nil {
		t.Fatal("strict build accepted truncated stream")
	}
	s, diag, err := treebuild.BuildRecordsOptions(h, cut, treebuild.Options{Lenient: true})
	if err != nil {
		t.Fatalf("lenient build: %v", err)
	}
	if !diag.SynthesizedEnd {
		t.Error("synthesized end not flagged")
	}
	if diag.DroppedOpenIntervals != 1 {
		t.Errorf("dropped %d open intervals, want 1", diag.DroppedOpenIntervals)
	}
	if len(s.Episodes) != 1 {
		t.Errorf("got %d episodes, want 1 (the completed one)", len(s.Episodes))
	}
	if s.End != 30 {
		t.Errorf("session end %v, want last seen time 30", s.End)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("lenient session invalid: %v", err)
	}
}

func TestLenientOpenIntervalsAtEnd(t *testing.T) {
	h, recs := lenientRecs()
	// Remove the return at index 4, leaving an open interval when the
	// end record arrives.
	bad := append(append([]*lila.Record{}, recs[:4]...), recs[5])
	s, diag, err := treebuild.BuildRecordsOptions(h, bad, treebuild.Options{Lenient: true})
	if err != nil {
		t.Fatalf("lenient build: %v", err)
	}
	if diag.DroppedOpenIntervals != 1 {
		t.Errorf("dropped %d open intervals, want 1", diag.DroppedOpenIntervals)
	}
	if len(s.Episodes) != 1 {
		t.Errorf("got %d episodes, want 1", len(s.Episodes))
	}
	if s.End != 50 {
		t.Errorf("session end %v, want 50 (real end record)", s.End)
	}
}

func TestSessionMemoryBudget(t *testing.T) {
	h, recs := lenientRecs()
	small := lila.Limits{MaxSessionBytes: 300} // a few records blow this
	_, _, err := treebuild.BuildRecordsOptions(h, recs, treebuild.Options{Limits: small})
	if !errors.Is(err, treebuild.ErrSessionTooLarge) {
		t.Fatalf("got %v, want ErrSessionTooLarge", err)
	}
	// Lenient does not soften the memory guard.
	_, _, err = treebuild.BuildRecordsOptions(h, recs, treebuild.Options{Lenient: true, Limits: small})
	if !errors.Is(err, treebuild.ErrSessionTooLarge) {
		t.Fatalf("lenient: got %v, want ErrSessionTooLarge", err)
	}
}

func TestReadSessionOptionsHealth(t *testing.T) {
	h, recs := lenientRecs()
	var buf bytes.Buffer
	w, err := lila.NewWriter(&buf, lila.FormatText, h)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Clean trace: health present but not degraded.
	s, health, err := treebuild.ReadSessionOptions(bytes.NewReader(buf.Bytes()),
		lila.ReaderOptions{Salvage: true}, treebuild.Options{Lenient: true})
	if err != nil {
		t.Fatalf("clean ingest: %v", err)
	}
	if health.Degraded() {
		t.Errorf("clean ingest reported degraded health: %+v", health)
	}
	if len(s.Episodes) != 2 {
		t.Errorf("got %d episodes, want 2", len(s.Episodes))
	}
	// Damaged trace: cut mid-stream.
	cut := buf.Bytes()[:buf.Len()*2/3]
	s, health, err = treebuild.ReadSessionOptions(bytes.NewReader(cut),
		lila.ReaderOptions{Salvage: true}, treebuild.Options{Lenient: true})
	if err != nil {
		t.Fatalf("damaged ingest: %v", err)
	}
	if !health.Degraded() {
		t.Error("damaged ingest not reflected in health")
	}
	if s == nil {
		t.Fatal("no session from damaged ingest")
	}
}
