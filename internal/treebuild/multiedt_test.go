package treebuild

import (
	"testing"

	"lagalyzer/internal/analysis"
	"lagalyzer/internal/lila"
	"lagalyzer/internal/trace"
)

// TestMultipleEventDispatchThreads exercises the capability the paper
// states but does not use (§V): "LagAlyzer already supports traces
// based on multiple concurrent event dispatch threads. It defines the
// notion of an episode as the time interval from the point where a
// given thread starts handling a GUI event until that thread finishes
// handling that event."
//
// Two EDTs handle interleaved — even overlapping — episodes; both
// must be reconstructed, each attributed to its thread, and the
// per-thread analyses must follow the right thread's samples.
func TestMultipleEventDispatchThreads(t *testing.T) {
	ms := func(v float64) trace.Time { return trace.Time(trace.Ms(v)) }
	recs := []*lila.Record{
		{Type: lila.RecThread, Thread: 1, Name: "EDT-A"},
		{Type: lila.RecThread, Thread: 2, Name: "EDT-B"},
		// Episode on EDT-A: 0..200ms (perceptible, listener).
		{Type: lila.RecCall, Time: ms(0), Thread: 1, Kind: trace.KindDispatch},
		{Type: lila.RecCall, Time: ms(1), Thread: 1, Kind: trace.KindListener, Class: "a.A", Method: "on"},
		// Overlapping episode on EDT-B: 50..120ms (paint).
		{Type: lila.RecCall, Time: ms(50), Thread: 2, Kind: trace.KindDispatch},
		{Type: lila.RecCall, Time: ms(51), Thread: 2, Kind: trace.KindPaint, Class: "b.B", Method: "paint"},
		// Samples while both are busy: A runnable, B sleeping.
		{Type: lila.RecSample, Time: ms(60), Thread: 1, State: trace.StateRunnable,
			Stack: []trace.Frame{{Class: "a.A", Method: "on"}}},
		{Type: lila.RecSample, Time: ms(60), Thread: 2, State: trace.StateSleeping,
			Stack: []trace.Frame{{Class: "java.lang.Thread", Method: "sleep", Native: true}}},
		// A GC while both threads are inside intervals: both trees
		// receive a copy.
		{Type: lila.RecGCStart, Time: ms(70)},
		{Type: lila.RecGCEnd, Time: ms(90)},
		{Type: lila.RecReturn, Time: ms(110), Thread: 2},
		{Type: lila.RecReturn, Time: ms(120), Thread: 2},
		{Type: lila.RecReturn, Time: ms(190), Thread: 1},
		{Type: lila.RecReturn, Time: ms(200), Thread: 1},
		{Type: lila.RecEnd, Time: ms(1000)},
	}
	s, diag, err := BuildRecords(lila.Header{App: "multi", GUIThread: 1,
		FilterThreshold: trace.DefaultFilterThreshold}, recs)
	if err != nil {
		t.Fatal(err)
	}
	if diag.OrphanTopLevel != 0 {
		t.Errorf("orphans: %d", diag.OrphanTopLevel)
	}
	if len(s.Episodes) != 2 {
		t.Fatalf("episodes = %d, want 2 (one per EDT)", len(s.Episodes))
	}
	a, b := s.Episodes[0], s.Episodes[1]
	if a.Thread != 1 || b.Thread != 2 {
		t.Errorf("episode threads = %d, %d", a.Thread, b.Thread)
	}
	if a.Dur() != trace.Ms(200) || b.Dur() != trace.Ms(70) {
		t.Errorf("durations = %v, %v", a.Dur(), b.Dur())
	}
	// Overlap preserved.
	if !(b.Start() > a.Start() && b.End() < a.End()) {
		t.Error("episodes should overlap (B inside A's span)")
	}
	// Both trees got the GC copy.
	for i, e := range s.Episodes {
		if !e.Root.HasKind(trace.KindGC) {
			t.Errorf("episode %d lost the GC copy", i)
		}
	}

	sessions := []*trace.Session{s}
	th := trace.DefaultPerceptibleThreshold

	// Triggers: one input (A) and one output (B).
	trig := analysis.TriggerAnalysis(sessions, th, false, analysis.TriggerOptions{})
	if trig.Counts[analysis.TriggerInput] != 1 || trig.Counts[analysis.TriggerOutput] != 1 {
		t.Errorf("trigger counts: %v", trig.Counts)
	}

	// Cause analysis follows each episode's own thread: the shared
	// tick contributes one runnable sample (episode A, thread 1) and
	// one sleeping sample (episode B, thread 2).
	causes := analysis.CauseAnalysis(sessions, th, false)
	if causes.Samples != 2 {
		t.Fatalf("cause samples = %d, want 2", causes.Samples)
	}
	if causes.Runnable != 0.5 || causes.Sleeping != 0.5 {
		t.Errorf("causes = %+v", causes)
	}

	// Concurrency counts the tick once per episode containing it.
	_, ticks := analysis.Concurrency(sessions, th, false)
	if ticks != 2 {
		t.Errorf("concurrency ticks = %d (tick inside two overlapping episodes)", ticks)
	}
}
