package dist

import (
	"context"
	"errors"
	"hash/fnv"
	"net/http"
	"sync"
	"time"
)

// workerPool tracks worker health. A worker accumulates consecutive
// failures and is ejected at Options.EjectAfter (immediately when it
// reports draining); after Options.EjectCooldown the pool probes its
// /healthz and re-admits it on a 200. Ejection is an availability
// optimization only — correctness never depends on it, because every
// attempt outcome flows through the retry and degradation layers
// regardless of which worker served it.
type workerPool struct {
	ejectAfter int
	cooldown   time.Duration
	client     *http.Client
	onEject    func(url string, err error)

	mu      sync.Mutex
	workers []*worker
}

type worker struct {
	url       string
	fails     int
	ejected   bool
	ejectedAt time.Time
}

func newWorkerPool(opt Options, client *http.Client, onEject func(string, error)) *workerPool {
	p := &workerPool{
		ejectAfter: opt.EjectAfter,
		cooldown:   opt.EjectCooldown,
		client:     client,
		onEject:    onEject,
	}
	if p.ejectAfter <= 0 {
		p.ejectAfter = 3
	}
	if p.cooldown <= 0 {
		p.cooldown = time.Second
	}
	for _, url := range opt.Workers {
		p.workers = append(p.workers, &worker{url: url})
	}
	return p
}

// pick chooses the primary worker for (label, attempt) and a distinct
// hedge candidate, by deterministic rotation over the healthy set:
// the same shard and attempt always land on the same workers, so
// fault plans keyed by host reproduce exactly. Returns (nil, nil)
// when no worker is healthy even after re-admission probes.
func (p *workerPool) pick(label string, attempt int) (primary, hedge *worker) {
	p.readmit()
	p.mu.Lock()
	defer p.mu.Unlock()
	var healthy []*worker
	for _, w := range p.workers {
		if !w.ejected {
			healthy = append(healthy, w)
		}
	}
	if len(healthy) == 0 {
		return nil, nil
	}
	h := fnv.New32a()
	h.Write([]byte(label))
	start := (int(h.Sum32()) + attempt - 1) % len(healthy)
	if start < 0 {
		start += len(healthy)
	}
	primary = healthy[start]
	if len(healthy) > 1 {
		hedge = healthy[(start+1)%len(healthy)]
	}
	return primary, hedge
}

// record feeds one attempt outcome into the health bookkeeping: a
// success clears the worker's strike count; a failure adds one, and a
// draining answer or the strike limit ejects it.
func (p *workerPool) record(w *worker, err error) {
	if w == nil {
		return
	}
	p.mu.Lock()
	if err == nil {
		w.fails = 0
		p.mu.Unlock()
		return
	}
	w.fails++
	eject := !w.ejected && (w.fails >= p.ejectAfter || errors.Is(err, errDraining))
	if eject {
		w.ejected = true
		w.ejectedAt = time.Now()
	}
	p.mu.Unlock()
	if eject && p.onEject != nil {
		p.onEject(w.url, err)
	}
}

// readmit probes every ejected worker whose cooldown has elapsed and
// restores the ones whose /healthz answers 200 (a draining or dead
// worker keeps failing the probe and stays out; its next probe waits
// a fresh cooldown).
func (p *workerPool) readmit() {
	p.mu.Lock()
	var due []*worker
	now := time.Now()
	for _, w := range p.workers {
		if w.ejected && now.Sub(w.ejectedAt) >= p.cooldown {
			due = append(due, w)
		}
	}
	p.mu.Unlock()
	for _, w := range due {
		ok := p.probe(w.url)
		p.mu.Lock()
		if ok {
			w.ejected = false
			w.fails = 0
		} else {
			w.ejectedAt = now
		}
		p.mu.Unlock()
	}
}

// probe asks a worker's readiness endpoint whether it is serving
// again. Only a plain 200 re-admits: a 503 is the drain answer.
func (p *workerPool) probe(url string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
