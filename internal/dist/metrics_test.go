package dist

import (
	"context"
	"strings"
	"testing"
	"time"

	"lagalyzer/internal/obs"
	"lagalyzer/internal/serve"
)

// distCounters is the exported metric schema for distributed studies;
// this test pins the names in both exposition formats so dashboards
// keyed on them cannot silently break.
var distCounters = []string{
	"dist_shards_total",
	"dist_shard_retries_total",
	"dist_hedges_total",
	"dist_workers_ejected_total",
	"dist_shards_degraded_total",
}

func TestDistMetricsSchema(t *testing.T) {
	snap := obs.Default().Snapshot()
	text := snap.Format()
	prom := obs.Default().FormatProm()
	for _, name := range distCounters {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("snapshot has no counter %s", name)
		}
		if !strings.Contains(text, "counter "+name+" ") {
			t.Errorf("text snapshot omits %s:\n%s", name, text)
		}
		if !strings.Contains(prom, "# TYPE "+name+" counter") {
			t.Errorf("prometheus exposition omits the TYPE line for %s", name)
		}
		if !strings.Contains(prom, "\n"+name+" ") {
			t.Errorf("prometheus exposition has no sample for %s", name)
		}
	}
}

// TestDistMetricsCount: the counters move with the events they name.
func TestDistMetricsCount(t *testing.T) {
	before := obs.Default().Snapshot().Counters
	c, err := New(Options{
		Workers:         []string{"http://127.0.0.1:1"}, // nothing listens
		MaxAttempts:     2,
		BackoffBase:     time.Nanosecond,
		BackoffMax:      time.Nanosecond,
		EjectAfter:      1,
		EjectCooldown:   time.Hour,
		NoLocalFallback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := serve.JobSpec{Kind: "shard", Apps: []string{"CrosswordSage"}, Sessions: 1}
	_, _, rerr := c.runShard(context.Background(), "probe", spec)
	if rerr == nil {
		t.Fatal("shard against a dead address succeeded")
	}
	after := obs.Default().Snapshot().Counters
	if d := after["dist_shards_total"] - before["dist_shards_total"]; d != 1 {
		t.Errorf("dist_shards_total moved by %d, want 1", d)
	}
	if d := after["dist_workers_ejected_total"] - before["dist_workers_ejected_total"]; d != 1 {
		t.Errorf("dist_workers_ejected_total moved by %d, want 1", d)
	}
}
