package dist

import (
	"context"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"lagalyzer/internal/apps"
	"lagalyzer/internal/faultinject"
	"lagalyzer/internal/lila"
	"lagalyzer/internal/report"
	"lagalyzer/internal/serve"
	"lagalyzer/internal/sim"
)

// The multi-lagd harness: real serve.Server instances behind
// httptest, a coordinator in front, and a FlakyTransport between them
// injecting the failures the robustness layers exist for. Every
// golden test pins the same contract: the distributed result is
// byte-identical to the single-node run — including the runs where
// the network refuses, resets, stalls, truncates, and corrupts.

// startWorkers spins up n worker lagd job servers and returns their
// base URLs.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		s, err := serve.New(serve.Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			s.Shutdown(ctx)
		})
		urls[i] = ts.URL
	}
	return urls
}

// studyProfiles resolves the three-app study every golden subtest
// shares.
func studyProfiles(t *testing.T, names ...string) []*sim.Profile {
	t.Helper()
	var ps []*sim.Profile
	for _, name := range names {
		p, err := apps.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	return ps
}

func studyConfig(t *testing.T) report.StudyConfig {
	return report.StudyConfig{
		Apps:           studyProfiles(t, "Arabeske", "CrosswordSage", "Euclide"),
		SessionsPerApp: 2,
		Seed:           7,
		SessionSeconds: 20,
		Sequential:     true,
	}
}

// localGolden memoizes the single-node reference run.
var (
	goldenOnce sync.Once
	goldenText string
	goldenRes  *report.StudyResult
)

func localGolden(t *testing.T) (string, *report.StudyResult) {
	t.Helper()
	goldenOnce.Do(func() {
		res, err := report.RunStudy(studyConfig(t))
		if err != nil {
			t.Fatal(err)
		}
		goldenRes = res
		goldenText = report.FormatAll(res) + report.FormatHealth(res.Health)
	})
	return goldenText, goldenRes
}

func formatted(res *report.StudyResult) string {
	return report.FormatAll(res) + report.FormatHealth(res.Health)
}

// primaryIndex replicates the pool's deterministic rotation so tests
// can place a faulty worker exactly where a shard's first attempt
// will land.
func primaryIndex(label string, attempt, workers int) int {
	h := fnv.New32a()
	h.Write([]byte(label))
	i := (int(h.Sum32()) + attempt - 1) % workers
	if i < 0 {
		i += workers
	}
	return i
}

func hostOf(url string) string { return strings.TrimPrefix(url, "http://") }

// TestDistStudyGolden is the acceptance pin: a 3-worker distributed
// study is byte-identical to the single-node run, in a clean network
// and under every injected fault class.
func TestDistStudyGolden(t *testing.T) {
	want, _ := localGolden(t)
	cfg := studyConfig(t)

	run := func(t *testing.T, opt Options) (*report.StudyResult, *Coordinator) {
		t.Helper()
		c, err := New(opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.RunStudy(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := formatted(res); got != want {
			t.Errorf("distributed output diverges from single-node:\n--- got ---\n%s\n--- want ---\n%s", got, want)
		}
		return res, c
	}

	t.Run("clean", func(t *testing.T) {
		workers := startWorkers(t, 3)
		res, c := run(t, Options{Workers: workers})
		if res.Health.Degraded() {
			t.Errorf("clean run degraded: %+v", res.Health)
		}
		if st := c.Stats(); st.Shards != 3 || st.Retries != 0 || st.Degraded != 0 {
			t.Errorf("stats = %+v, want 3 clean shards", st)
		}
	})

	t.Run("retries under refused connections", func(t *testing.T) {
		workers := startWorkers(t, 3)
		ft := &faultinject.FlakyTransport{Plan: faultinject.FirstNPlan(2, faultinject.FaultRefuse)}
		_, c := run(t, Options{
			Workers:     workers,
			HTTPClient:  &http.Client{Transport: ft},
			BackoffBase: time.Millisecond,
			MaxAttempts: 4,
		})
		if st := c.Stats(); st.Retries < 1 {
			t.Errorf("stats = %+v, want retries after refused submits", st)
		}
		if ft.Injected() != 2 {
			t.Errorf("injected = %d, want 2", ft.Injected())
		}
	})

	t.Run("retries under corrupted shard state", func(t *testing.T) {
		workers := startWorkers(t, 3)
		ft := &faultinject.FlakyTransport{
			Plan: faultinject.PathPlan("/state", 1, faultinject.FaultCorrupt), Seed: 41}
		_, c := run(t, Options{
			Workers:     workers,
			HTTPClient:  &http.Client{Transport: ft},
			BackoffBase: time.Millisecond,
		})
		if st := c.Stats(); st.Retries < 1 {
			t.Errorf("stats = %+v, want a retry after the corrupted state fetch", st)
		}
	})

	t.Run("retries under truncated shard state", func(t *testing.T) {
		workers := startWorkers(t, 3)
		ft := &faultinject.FlakyTransport{
			Plan: faultinject.PathPlan("/state", 1, faultinject.FaultTruncate)}
		_, c := run(t, Options{
			Workers:     workers,
			HTTPClient:  &http.Client{Transport: ft},
			BackoffBase: time.Millisecond,
		})
		if st := c.Stats(); st.Retries < 1 {
			t.Errorf("stats = %+v, want a retry after the truncated state fetch", st)
		}
	})

	t.Run("retries under mid-body reset", func(t *testing.T) {
		workers := startWorkers(t, 3)
		ft := &faultinject.FlakyTransport{
			Plan: faultinject.PathPlan("/state", 1, faultinject.FaultReset)}
		_, c := run(t, Options{
			Workers:     workers,
			HTTPClient:  &http.Client{Transport: ft},
			BackoffBase: time.Millisecond,
		})
		if st := c.Stats(); st.Retries < 1 {
			t.Errorf("stats = %+v, want a retry after the reset state fetch", st)
		}
	})

	t.Run("worker ejection", func(t *testing.T) {
		// Place a connection-refusing worker exactly where the first
		// app's first attempt lands; one strike ejects it and the
		// retry succeeds elsewhere.
		workers := startWorkers(t, 3)
		bad := primaryIndex("Arabeske", 1, 3)
		ft := &faultinject.FlakyTransport{
			Plan: faultinject.HostPlan(hostOf(workers[bad]), faultinject.FaultRefuse)}
		_, c := run(t, Options{
			Workers:     workers,
			HTTPClient:  &http.Client{Transport: ft},
			BackoffBase: time.Millisecond,
			EjectAfter:  1,
			// Cooldown far past the test: the ejected worker stays out.
			EjectCooldown: time.Hour,
		})
		st := c.Stats()
		if st.Ejected != 1 {
			t.Errorf("stats = %+v, want exactly one ejection", st)
		}
		if st.Retries < 1 {
			t.Errorf("stats = %+v, want a retry off the ejected worker", st)
		}
	})
}

// TestDistStudyHedgeWin: a stalling primary is out-raced by a hedge
// on the other worker, and the result is still byte-identical.
func TestDistStudyHedgeWin(t *testing.T) {
	cfg := report.StudyConfig{
		Apps:           studyProfiles(t, "CrosswordSage"),
		SessionsPerApp: 1,
		Seed:           3,
		SessionSeconds: 20,
		Sequential:     true,
	}
	local, err := report.RunStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}

	workers := startWorkers(t, 2)
	slow := primaryIndex("CrosswordSage", 1, 2)
	ft := &faultinject.FlakyTransport{
		Plan:  faultinject.HostPlan(hostOf(workers[slow]), faultinject.FaultStall),
		Stall: 10 * time.Second,
	}
	c, err := New(Options{
		Workers:    workers,
		HTTPClient: &http.Client{Transport: ft},
		HedgeAfter: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := c.RunStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := formatted(res), formatted(local); got != want {
		t.Errorf("hedged output diverges:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	st := c.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Errorf("stats = %+v, want exactly one winning hedge", st)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("hedge did not rescue the stalled shard: took %s", elapsed)
	}
}

// TestDistStudyDegradedLocal: with every worker refusing
// connections, each shard exhausts its remote budget and re-runs
// locally on the coordinator — and the output is STILL byte-identical
// to the single-node run, because the local fallback is the
// single-node code.
func TestDistStudyDegradedLocal(t *testing.T) {
	want, _ := localGolden(t)
	workers := startWorkers(t, 2)
	ft := &faultinject.FlakyTransport{
		Plan: func(_ int, _ *http.Request) faultinject.Fault { return faultinject.FaultRefuse }}
	c, err := New(Options{
		Workers:     workers,
		HTTPClient:  &http.Client{Transport: ft},
		BackoffBase: time.Millisecond,
		MaxAttempts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunStudy(context.Background(), studyConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := formatted(res); got != want {
		t.Errorf("degraded output diverges from single-node:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	st := c.Stats()
	if st.Degraded != 3 || st.LocalReruns != 3 || st.Lost != 0 {
		t.Errorf("stats = %+v, want all 3 shards degraded to local re-runs", st)
	}
}

// TestDistStudyItemizedLoss: with local fallback disabled, an
// unrecoverable shard is itemized in StudyHealth with the shard_lost
// reason — never silently dropped — while the surviving apps' rows
// match the single-node run exactly.
func TestDistStudyItemizedLoss(t *testing.T) {
	_, golden := localGolden(t)
	workers := startWorkers(t, 2)
	// Refuse only the submissions that carry the Arabeske shard (body
	// sniffing via GetBody keeps the request replayable).
	ft := &faultinject.FlakyTransport{
		Plan: func(_ int, req *http.Request) faultinject.Fault {
			if req.Method == "POST" && req.GetBody != nil {
				rc, err := req.GetBody()
				if err != nil {
					return faultinject.FaultNone
				}
				body, _ := io.ReadAll(rc)
				rc.Close()
				if strings.Contains(string(body), "Arabeske") {
					return faultinject.FaultRefuse
				}
			}
			return faultinject.FaultNone
		},
	}
	c, err := New(Options{
		Workers:         workers,
		HTTPClient:      &http.Client{Transport: ft},
		BackoffBase:     time.Millisecond,
		MaxAttempts:     2,
		NoLocalFallback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunStudy(context.Background(), studyConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial() {
		t.Error("study with a lost shard is not partial")
	}
	if len(res.Health.Apps) != 1 || res.Health.Apps[0].App != "Arabeske" ||
		res.Health.Apps[0].Reason != report.LossShard {
		t.Fatalf("health apps = %+v, want Arabeske itemized as %s",
			res.Health.Apps, report.LossShard)
	}
	if !strings.Contains(report.FormatHealth(res.Health), report.LossShard) {
		t.Errorf("formatted health omits the loss reason:\n%s", report.FormatHealth(res.Health))
	}
	if len(res.Apps) != 2 {
		t.Fatalf("surviving apps = %d, want 2", len(res.Apps))
	}
	for _, a := range res.Apps {
		g, ok := golden.AppByName(a.Suite.App)
		if !ok {
			t.Fatalf("app %s missing from golden", a.Suite.App)
		}
		if !reflect.DeepEqual(a.Overview, g.Overview) {
			t.Errorf("app %s row diverges from single-node", a.Suite.App)
		}
	}
	if st := c.Stats(); st.Lost != 1 || st.Degraded != 1 {
		t.Errorf("stats = %+v, want one lost shard", st)
	}
}

// tracesCorpus writes a six-file corpus (two apps, one file damaged)
// for the distributed loader tests.
func tracesCorpus(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(name, app string, id int, corrupt func([]byte) []byte) {
		t.Helper()
		p, err := apps.ByName(app)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sim.Run(sim.Config{Profile: p, SessionID: id, Seed: 11, SessionSeconds: 10})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := lila.WriteSession(&b, lila.FormatBinary, s); err != nil {
			t.Fatal(err)
		}
		data := []byte(b.String())
		if corrupt != nil {
			data = corrupt(data)
		}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a0.lila", "CrosswordSage", 0, nil)
	write("a1.lila", "CrosswordSage", 1, nil)
	write("b0.lila", "JEdit", 0, nil)
	write("b1.lila", "JEdit", 1, nil)
	write("c_bad.lila", "CrosswordSage", 2, func(b []byte) []byte {
		return faultinject.TruncateFrac(b, 0.5)
	})
	write("d0.lila", "JEdit", 2, nil)
	return dir
}

// TestDistTracesGolden: a corpus sharded over two workers merges —
// suites, session order, health ledger, and the analysis derived from
// them — byte-identically to a single-node scan, faults included.
func TestDistTracesGolden(t *testing.T) {
	dir := tracesCorpus(t)
	opts := report.LoadOptions{Salvage: true}
	wantSuites, wantHealth, err := report.LoadTraceDirOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantRes := report.AnalyzeSuites(wantSuites, 0)
	wantRes.Health.Merge(wantHealth)
	want := formatted(wantRes)

	check := func(t *testing.T, c *Coordinator) {
		t.Helper()
		got, err := c.RunTraces(context.Background(), dir, opts, 0)
		if err != nil {
			t.Fatal(err)
		}
		res := report.AnalyzeSuites(got.Suites, 0)
		res.Health.Merge(got.Health)
		if text := formatted(res); text != want {
			t.Errorf("distributed trace study diverges:\n--- got ---\n%s\n--- want ---\n%s", text, want)
		}
	}

	t.Run("clean", func(t *testing.T) {
		c, err := New(Options{Workers: startWorkers(t, 2)})
		if err != nil {
			t.Fatal(err)
		}
		check(t, c)
		if st := c.Stats(); st.Shards != 2 || st.Degraded != 0 {
			t.Errorf("stats = %+v, want 2 clean shards", st)
		}
	})

	t.Run("faulty network", func(t *testing.T) {
		ft := &faultinject.FlakyTransport{
			Plan: faultinject.PathPlan("/state", 1, faultinject.FaultCorrupt), Seed: 17}
		c, err := New(Options{
			Workers:     startWorkers(t, 2),
			HTTPClient:  &http.Client{Transport: ft},
			BackoffBase: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		check(t, c)
		if st := c.Stats(); st.Retries < 1 {
			t.Errorf("stats = %+v, want a retry", st)
		}
	})

	t.Run("all workers down degrades to local load", func(t *testing.T) {
		ft := &faultinject.FlakyTransport{
			Plan: func(_ int, _ *http.Request) faultinject.Fault { return faultinject.FaultRefuse }}
		c, err := New(Options{
			Workers:     startWorkers(t, 2),
			HTTPClient:  &http.Client{Transport: ft},
			BackoffBase: time.Millisecond,
			MaxAttempts: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		check(t, c)
		if st := c.Stats(); st.Degraded != 2 || st.LocalReruns != 2 {
			t.Errorf("stats = %+v, want both shards degraded to local loads", st)
		}
	})
}

// TestDistTracesItemizedLoss: a lost trace shard is itemized (files
// counted, reason recorded), and the surviving shard still analyzes.
func TestDistTracesItemizedLoss(t *testing.T) {
	dir := tracesCorpus(t)
	ft := &faultinject.FlakyTransport{
		Plan: func(_ int, req *http.Request) faultinject.Fault {
			if req.Method == "POST" && req.GetBody != nil {
				rc, err := req.GetBody()
				if err != nil {
					return faultinject.FaultNone
				}
				body, _ := io.ReadAll(rc)
				rc.Close()
				if strings.Contains(string(body), "a0.lila") {
					return faultinject.FaultRefuse
				}
			}
			return faultinject.FaultNone
		},
	}
	c, err := New(Options{
		Workers:         startWorkers(t, 2),
		HTTPClient:      &http.Client{Transport: ft},
		BackoffBase:     time.Millisecond,
		MaxAttempts:     2,
		NoLocalFallback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.RunTraces(context.Background(), dir, report.LoadOptions{Salvage: true}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Health.Apps) != 1 || got.Health.Apps[0].Reason != report.LossShard {
		t.Fatalf("health = %+v, want one shard_lost entry", got.Health.Apps)
	}
	if got.Health.SessionsSkipped != 3 {
		t.Errorf("sessions skipped = %d, want the lost shard's 3 files", got.Health.SessionsSkipped)
	}
	// The surviving shard contributes exactly what a local load of its
	// files would.
	paths, err := report.ListTraceFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantSuites, _, err := report.LoadTraceDirOptions(dir,
		report.LoadOptions{Salvage: true, Paths: paths[3:]})
	if err != nil {
		t.Fatal(err)
	}
	var want, sessions int
	for _, s := range wantSuites {
		want += len(s.Sessions)
	}
	for _, s := range got.Suites {
		sessions += len(s.Sessions)
	}
	if sessions != want || sessions == 0 {
		t.Errorf("surviving sessions = %d, want the local load's %d", sessions, want)
	}
}
