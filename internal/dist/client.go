package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"time"

	"lagalyzer/internal/serve"
)

// The shard client: one remote attempt is submit → poll → fetch
// state, bounded by Options.AttemptTimeout. Around it sit the three
// resilience layers, innermost first:
//
//   - hedging: a straggling attempt races a second attempt on a
//     different worker (attemptHedged);
//   - retry: failed attempts are re-submitted to the next healthy
//     worker, after a capped exponential backoff with deterministic
//     jitter that honors any server Retry-After hint (runShard,
//     Backoff);
//   - ejection: consecutive failures eject a worker from the pool
//     until a /healthz probe re-admits it (workerPool).
//
// Every transport-shaped failure — refused connection, mid-body
// reset, stall past the attempt deadline, truncated or corrupted
// shard state (serve.ErrBadShardState), shed submissions, a draining
// worker, a server-side retryable failure — is retryable. Only the
// coordinator's own context ending is permanent.

// errDraining marks a worker that answered 503: it is shutting down
// and must not receive further shards.
var errDraining = errors.New("dist: worker draining")

// retryAfterError carries a server's Retry-After hint (a shed 429)
// into the backoff computation.
type retryAfterError struct {
	hint time.Duration
	err  error
}

func (e *retryAfterError) Error() string { return e.err.Error() }
func (e *retryAfterError) Unwrap() error { return e.err }

// hintOf extracts a Retry-After hint from err (0 when absent).
func hintOf(err error) time.Duration {
	var ra *retryAfterError
	if errors.As(err, &ra) {
		return ra.hint
	}
	return 0
}

// Backoff is the single backoff path for every retryable condition —
// shed submissions and transport failures alike. It returns the delay
// before retry number attempt (1-based): exponential from base,
// raised to any server Retry-After hint, jittered deterministically
// from (key, attempt) so reruns reproduce the exact schedule, and
// always capped at max — a server cannot stretch the shard's retry
// budget by hinting a huge Retry-After.
func Backoff(base time.Duration, attempt int, key string, hint, max time.Duration) time.Duration {
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if hint > d {
		d = hint
	}
	if d > max {
		d = max
	}
	// Deterministic jitter in [0.75, 1.25): the same (key, attempt)
	// always waits the same amount, but distinct shards desynchronize
	// instead of thundering back together.
	h := fnv.New64a()
	io.WriteString(h, key)
	fmt.Fprintf(h, "/%d", attempt)
	frac := float64(h.Sum64()%1000) / 1000
	d = time.Duration(float64(d) * (0.75 + 0.5*frac))
	if d > max {
		d = max
	}
	return d
}

// retryable reports whether a shard attempt failure is worth another
// attempt. The parent context ending is the only permanent condition:
// everything else — refused, reset, stalled past the attempt
// deadline, damaged state, shed, draining, server-side failure — may
// succeed on another worker or a later try.
func retryable(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	return err != nil
}

// runShard runs one shard to completion against the pool: hedged
// attempts, unified backoff, ejection bookkeeping. It returns the
// decoded state, or the attempt count and last error once the budget
// is exhausted.
func (c *Coordinator) runShard(ctx context.Context, label string, spec serve.JobSpec) (*serve.ShardState, int, error) {
	mShards.Add(1)
	c.mu.Lock()
	c.stats.Shards++
	c.mu.Unlock()

	var lastErr error
	maxAttempts := c.opt.maxAttempts()
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		w, hedge := c.pool.pick(label, attempt)
		if w == nil {
			lastErr = fmt.Errorf("dist: no healthy workers (of %d): %w",
				len(c.opt.Workers), errOr(lastErr, errAllEjected))
			break
		}
		st, err := c.attemptHedged(ctx, label, spec, w, hedge)
		if err == nil {
			return st, attempt, nil
		}
		lastErr = err
		if !retryable(ctx, err) {
			return nil, attempt, err
		}
		if attempt == maxAttempts {
			break
		}
		mRetries.Add(1)
		c.mu.Lock()
		c.stats.Retries++
		c.mu.Unlock()
		delay := Backoff(c.opt.backoffBase(), attempt, label, hintOf(err), c.opt.backoffMax())
		c.log.Info("dist: shard retry", "shard", label, "attempt", attempt,
			"delay", delay.String(), "err", err)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, attempt, ctx.Err()
		}
	}
	if ctx.Err() != nil {
		return nil, maxAttempts, ctx.Err()
	}
	return nil, maxAttempts, fmt.Errorf("dist: shard %s exhausted %d attempts: %w",
		label, maxAttempts, lastErr)
}

var errAllEjected = errors.New("all workers ejected")

func errOr(err, fallback error) error {
	if err != nil {
		return err
	}
	return fallback
}

// attemptHedged runs one attempt on primary; if it has not finished
// within Options.HedgeAfter and a second healthy worker exists, a
// hedge attempt races it, first success wins, and the loser is
// canceled. Both outcomes feed the pool's health bookkeeping.
func (c *Coordinator) attemptHedged(ctx context.Context, label string, spec serve.JobSpec, primary, hedge *worker) (*serve.ShardState, error) {
	if c.opt.HedgeAfter <= 0 || hedge == nil {
		st, err := c.attemptOnce(ctx, spec, primary)
		c.pool.record(primary, err)
		return st, err
	}

	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		st     *serve.ShardState
		err    error
		w      *worker
		hedged bool
	}
	results := make(chan outcome, 2)
	launch := func(w *worker, hedged bool) {
		st, err := c.attemptOnce(actx, spec, w)
		results <- outcome{st, err, w, hedged}
	}
	go launch(primary, false)

	timer := time.NewTimer(c.opt.HedgeAfter)
	defer timer.Stop()
	inFlight := 1
	for {
		select {
		case <-timer.C:
			// The primary is straggling: race a second attempt. The
			// primary keeps running — whichever finishes first wins.
			mHedges.Add(1)
			c.mu.Lock()
			c.stats.Hedges++
			c.mu.Unlock()
			c.log.Info("dist: hedging straggler", "shard", label,
				"primary", primary.url, "hedge", hedge.url)
			inFlight++
			go launch(hedge, true)
		case out := <-results:
			if out.err == nil {
				c.pool.record(out.w, nil)
				if out.hedged {
					c.mu.Lock()
					c.stats.HedgeWins++
					c.mu.Unlock()
				}
				cancel() // release the loser
				return out.st, nil
			}
			// Don't punish the canceled loser of a decided race; a
			// genuine failure counts against its worker.
			if actx.Err() == nil || ctx.Err() != nil {
				c.pool.record(out.w, out.err)
			}
			inFlight--
			if inFlight == 0 {
				// Both racers failed (or the primary failed before the
				// hedge delay): surface the last error to the retry
				// layer, which owns backoff and worker rotation.
				return nil, out.err
			}
			// One racer failed while the other is still running: the
			// survivor decides the outcome.
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// attemptOnce is one complete remote attempt against worker w:
// submit the shard job, poll it to a terminal state, fetch and decode
// the partial state. The whole attempt shares one deadline.
func (c *Coordinator) attemptOnce(ctx context.Context, spec serve.JobSpec, w *worker) (*serve.ShardState, error) {
	ctx, cancel := context.WithTimeout(ctx, c.opt.attemptTimeout())
	defer cancel()

	id, err := c.submit(ctx, w, spec)
	if err != nil {
		return nil, err
	}
	if err := c.await(ctx, w, id); err != nil {
		return nil, err
	}
	return c.fetchState(ctx, w, id)
}

// submit POSTs the job spec, mapping the server's back-pressure
// answers onto the retry layer's vocabulary.
func (c *Coordinator) submit(ctx context.Context, w *worker, spec serve.JobSpec) (string, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", fmt.Errorf("dist: encoding job spec: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, "POST", w.url+"/jobs", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", fmt.Errorf("dist: submit to %s: %w", w.url, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted:
	case http.StatusTooManyRequests:
		// Shed: respect the server's Retry-After hint through the
		// unified backoff (capped there against the retry budget).
		hint := time.Duration(0)
		if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
			hint = time.Duration(s) * time.Second
		}
		return "", &retryAfterError{hint: hint,
			err: fmt.Errorf("dist: %s shed the job: %s", w.url, readError(resp.Body))}
	case http.StatusServiceUnavailable:
		return "", fmt.Errorf("%w: %s: %s", errDraining, w.url, readError(resp.Body))
	default:
		return "", fmt.Errorf("dist: submit to %s: %s: %s", w.url, resp.Status, readError(resp.Body))
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || out.ID == "" {
		return "", fmt.Errorf("dist: submit to %s: undecodable accept body: %v", w.url, err)
	}
	return out.ID, nil
}

// await polls the job until it reaches a terminal state.
func (c *Coordinator) await(ctx context.Context, w *worker, id string) error {
	tick := time.NewTicker(c.opt.pollInterval())
	defer tick.Stop()
	for {
		st, err := c.status(ctx, w, id)
		if err != nil {
			return err
		}
		switch st.State {
		case serve.StateDone:
			return nil
		case serve.StateFailed:
			return fmt.Errorf("dist: shard job %s failed on %s: %s", id, w.url, st.Error)
		case serve.StateCheckpointed:
			// The worker parked the job for its own restart; this
			// attempt will never finish here.
			return fmt.Errorf("dist: shard job %s checkpointed on draining %s", id, w.url)
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func (c *Coordinator) status(ctx context.Context, w *worker, id string) (*serve.Status, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", w.url+"/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("dist: polling %s on %s: %w", id, w.url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("dist: polling %s on %s: %s", id, w.url, resp.Status)
	}
	var st serve.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("dist: polling %s on %s: %w", id, w.url, err)
	}
	return &st, nil
}

// fetchState retrieves and verifies the shard's partial state. Any
// wire damage — truncation, reset, bit flips — fails the checksum
// framing (serve.ErrBadShardState) and is retried like any transport
// error, never merged.
func (c *Coordinator) fetchState(ctx context.Context, w *worker, id string) (*serve.ShardState, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", w.url+"/jobs/"+id+"/state", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("dist: fetching state of %s from %s: %w", id, w.url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("dist: fetching state of %s from %s: %s: %s",
			id, w.url, resp.Status, readError(resp.Body))
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("dist: reading state of %s from %s: %w", id, w.url, err)
	}
	st, err := serve.DecodeShardState(data)
	if err != nil {
		return nil, fmt.Errorf("dist: state of %s from %s: %w", id, w.url, err)
	}
	return st, nil
}

// readError drains up to a line of an error response body for
// messages.
func readError(r io.Reader) string {
	data, _ := io.ReadAll(io.LimitReader(r, 256))
	return string(bytes.TrimSpace(data))
}
