// Package dist runs a study as shards fanned out over worker lagd
// nodes, merged back into a result byte-identical to a single-node
// run.
//
// The partitioning is chosen so the merge is trivially deterministic:
//
//   - A simulated study shards by application (one shard per app —
//     the simulator derives each app's sessions independently from
//     the seed). A worker runs the full single-node pipeline for its
//     app and returns the session suite; the coordinator re-derives
//     the analysis locally through the same deterministic engine a
//     single-node run uses, via report.StudyConfig.SuiteSource. Merge
//     order is catalog order, exactly as a local run.
//
//   - A trace corpus shards into contiguous ranges of the sorted path
//     list. Workers only LOAD their files (an app's sessions may span
//     shards, so per-shard analysis would diverge); the coordinator
//     concatenates per-app session lists in shard order — which, for
//     contiguous ranges, is precisely sorted path order — then
//     analyzes, reproducing the single-node scan byte for byte.
//
// Robustness is layered around that core: per-attempt timeouts,
// capped exponential backoff with deterministic jitter (Backoff),
// Retry-After-aware re-submission, hedged requests for stragglers,
// worker health probing with ejection and re-admission (workerPool),
// and graceful degradation — a shard that exhausts every remote
// attempt is re-run locally on the coordinator, or, when local
// fallback is disabled or fails too, itemized in the StudyHealth
// ledger with the LossShard reason. A shard is never silently
// dropped.
package dist

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"lagalyzer/internal/obs"
	"lagalyzer/internal/report"
	"lagalyzer/internal/serve"
	"lagalyzer/internal/sim"
	"lagalyzer/internal/trace"
)

// Distribution metrics: the five counters the coordinator exports
// (text and Prometheus forms via the obs registry).
var (
	mShards = obs.NewCounter("dist_shards_total",
		"shards dispatched to workers by the distributed coordinator")
	mRetries = obs.NewCounter("dist_shard_retries_total",
		"shard attempts retried after a retryable failure")
	mHedges = obs.NewCounter("dist_hedges_total",
		"hedge requests launched against straggling shard attempts")
	mEjected = obs.NewCounter("dist_workers_ejected_total",
		"workers ejected from the pool after consecutive failures")
	mDegraded = obs.NewCounter("dist_shards_degraded_total",
		"shards that exhausted remote attempts and degraded to a local re-run or an itemized loss")
)

// Options configure a Coordinator.
type Options struct {
	// Workers are the base URLs of the worker lagd nodes (e.g.
	// "http://host:8080"). At least one is required.
	Workers []string
	// HTTPClient performs the requests; nil uses http.DefaultClient.
	// Tests wire a faultinject.FlakyTransport here.
	HTTPClient *http.Client
	// AttemptTimeout bounds one remote attempt end to end (submit,
	// poll, fetch state); 0 means 60s.
	AttemptTimeout time.Duration
	// MaxAttempts is the remote-attempt budget per shard (hedges
	// count as part of the attempt that launched them); 0 means 3.
	MaxAttempts int
	// BackoffBase seeds the exponential backoff between attempts;
	// 0 means 25ms.
	BackoffBase time.Duration
	// BackoffMax caps the backoff, including any server Retry-After
	// hint; 0 means 2s.
	BackoffMax time.Duration
	// HedgeAfter launches a second attempt on another worker when the
	// first has not finished within this duration; 0 disables hedging.
	HedgeAfter time.Duration
	// PollInterval is the job-status polling cadence; 0 means 15ms.
	PollInterval time.Duration
	// EjectAfter ejects a worker after this many consecutive failed
	// attempts; 0 means 3. A draining worker (healthz 503) is ejected
	// immediately.
	EjectAfter int
	// EjectCooldown is how long an ejected worker sits out before the
	// pool probes its /healthz for re-admission; 0 means 1s.
	EjectCooldown time.Duration
	// NoLocalFallback disables the coordinator-local re-run of an
	// exhausted shard; the shard is itemized in StudyHealth instead.
	NoLocalFallback bool
	// Logger receives coordination events; nil discards them.
	Logger *slog.Logger
}

func (o Options) attemptTimeout() time.Duration {
	if o.AttemptTimeout > 0 {
		return o.AttemptTimeout
	}
	return 60 * time.Second
}

func (o Options) maxAttempts() int {
	if o.MaxAttempts > 0 {
		return o.MaxAttempts
	}
	return 3
}

func (o Options) backoffBase() time.Duration {
	if o.BackoffBase > 0 {
		return o.BackoffBase
	}
	return 25 * time.Millisecond
}

func (o Options) backoffMax() time.Duration {
	if o.BackoffMax > 0 {
		return o.BackoffMax
	}
	return 2 * time.Second
}

func (o Options) pollInterval() time.Duration {
	if o.PollInterval > 0 {
		return o.PollInterval
	}
	return 15 * time.Millisecond
}

// Stats are the coordinator's own counts for one run (the obs
// counters aggregate process-wide; Stats isolate a single
// coordinator, which the golden tests assert against).
type Stats struct {
	// Shards dispatched (remote attempts started for distinct shards).
	Shards int
	// Retries after retryable failures.
	Retries int
	// Hedges launched, and how many of them won their race.
	Hedges, HedgeWins int
	// Ejected workers (re-admissions do not decrement).
	Ejected int
	// Degraded shards: exhausted remotely, handled by local re-run or
	// itemized loss.
	Degraded int
	// LocalReruns and Lost split Degraded by outcome.
	LocalReruns, Lost int
}

// Coordinator fans a study out over worker lagd nodes.
type Coordinator struct {
	opt  Options
	pool *workerPool
	log  *slog.Logger

	mu    sync.Mutex
	stats Stats
}

// New builds a Coordinator over opt.Workers.
func New(opt Options) (*Coordinator, error) {
	if len(opt.Workers) == 0 {
		return nil, fmt.Errorf("dist: no workers configured")
	}
	log := opt.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	c := &Coordinator{opt: opt, log: log}
	c.pool = newWorkerPool(opt, c.httpClient(), c.onEject)
	return c, nil
}

func (c *Coordinator) httpClient() *http.Client {
	if c.opt.HTTPClient != nil {
		return c.opt.HTTPClient
	}
	return http.DefaultClient
}

func (c *Coordinator) onEject(url string, err error) {
	c.mu.Lock()
	c.stats.Ejected++
	c.mu.Unlock()
	mEjected.Add(1)
	c.log.Warn("dist: worker ejected", "worker", url, "err", err)
}

// Stats returns a snapshot of the coordinator's counts.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ShardLostError marks a shard the coordinator could not recover: the
// remote budget is exhausted and the local fallback was disabled or
// failed too. It implements LossReason(), so the report layer's
// health ledger records the app with the LossShard reason instead of
// dropping it silently.
type ShardLostError struct {
	// Shard labels the lost unit (app name, or a file-range label for
	// trace shards).
	Shard string
	// Attempts is how many remote attempts were spent.
	Attempts int
	// Err is the last failure.
	Err error
}

func (e *ShardLostError) Error() string {
	return fmt.Sprintf("dist: shard %s lost after %d attempts: %v", e.Shard, e.Attempts, e.Err)
}

func (e *ShardLostError) Unwrap() error { return e.Err }

// LossReason classifies the loss for report.StudyHealth.
func (e *ShardLostError) LossReason() string { return report.LossShard }

// RunStudy runs cfg as a distributed study: one shard per application,
// remote suites merged through the single-node pipeline. The result —
// rows, health, checkpoint payloads — is byte-identical to
// report.RunStudyContext on one node, because it IS
// report.RunStudyContext: only the suite producer is swapped for the
// shard client. cfg.Checkpoint / cfg.CheckpointDir double as a shared
// result cache — a checkpointed app (same config hash) is never
// dispatched, whether the checkpoint came from a local or a
// distributed run.
func (c *Coordinator) RunStudy(ctx context.Context, cfg report.StudyConfig) (*report.StudyResult, error) {
	cfg.SuiteSource = func(ctx context.Context, p *sim.Profile) (*trace.Suite, error) {
		return c.appSuite(ctx, cfg, p)
	}
	return report.RunStudyContext(ctx, cfg)
}

// appSuite fetches one app's session suite from a worker shard, with
// the full recovery ladder: retries/hedging inside runShard, then
// local re-run, then itemized loss.
func (c *Coordinator) appSuite(ctx context.Context, cfg report.StudyConfig, p *sim.Profile) (*trace.Suite, error) {
	spec := serve.JobSpec{
		Kind:     "shard",
		Apps:     []string{p.Name},
		Sessions: cfg.SessionsPerApp,
		Seed:     cfg.Seed,
		Seconds:  cfg.SessionSeconds,
	}
	st, attempts, rerr := c.runShard(ctx, p.Name, spec)
	if rerr == nil {
		for _, suite := range st.Suites {
			if suite != nil && suite.App == p.Name {
				return suite, nil
			}
		}
		// The worker ran but produced no suite: the app failed
		// deterministically on the worker (its error is itemized in the
		// shard health). Surface it and let the degradation ladder
		// decide.
		rerr = fmt.Errorf("dist: shard returned no suite for app %s%s", p.Name, shardHealthNote(st))
	}
	return c.degradeApp(ctx, cfg, p, attempts, rerr)
}

// shardHealthNote summarizes a shard's health ledger for error text.
func shardHealthNote(st *serve.ShardState) string {
	if st == nil || st.Health == nil || len(st.Health.Apps) == 0 {
		return ""
	}
	a := st.Health.Apps[0]
	return fmt.Sprintf(" (worker: app %s failed: %s)", a.App, a.Error)
}

// degradeApp is the graceful-degradation tail for a study shard whose
// remote budget is exhausted: re-run the app locally unless local
// fallback is off, and itemize the loss if that fails too.
func (c *Coordinator) degradeApp(ctx context.Context, cfg report.StudyConfig, p *sim.Profile, attempts int, rerr error) (*trace.Suite, error) {
	if ctx.Err() != nil {
		// The coordinator itself is shutting down: this is a
		// cancellation (LossCanceled in the health ledger), not a
		// degraded shard.
		return nil, ctx.Err()
	}
	c.mu.Lock()
	c.stats.Degraded++
	c.mu.Unlock()
	mDegraded.Add(1)
	if c.opt.NoLocalFallback {
		c.mu.Lock()
		c.stats.Lost++
		c.mu.Unlock()
		return nil, &ShardLostError{Shard: p.Name, Attempts: attempts, Err: rerr}
	}
	c.log.Warn("dist: shard degraded to local re-run", "app", p.Name, "err", rerr)
	suite, lerr := c.localSuite(ctx, cfg, p)
	if lerr != nil {
		c.mu.Lock()
		c.stats.Lost++
		c.mu.Unlock()
		return nil, &ShardLostError{Shard: p.Name, Attempts: attempts,
			Err: fmt.Errorf("remote: %v; local re-run: %w", rerr, lerr)}
	}
	c.mu.Lock()
	c.stats.LocalReruns++
	c.mu.Unlock()
	return suite, nil
}

// localSuite re-derives one app's suite on the coordinator by running
// a single-app study through the ordinary local pipeline — the same
// sim.Run calls, seeds, and session IDs a single-node run uses, so
// the fallback suite is byte-identical to the one the worker would
// have produced.
func (c *Coordinator) localSuite(ctx context.Context, cfg report.StudyConfig, p *sim.Profile) (*trace.Suite, error) {
	local := report.StudyConfig{
		Apps:           []*sim.Profile{p},
		SessionsPerApp: cfg.SessionsPerApp,
		Seed:           cfg.Seed,
		Threshold:      cfg.Threshold,
		SessionSeconds: cfg.SessionSeconds,
		Sequential:     true,
	}
	res, err := report.RunStudyContext(ctx, local)
	if err != nil {
		return nil, err
	}
	if len(res.Apps) == 0 {
		if len(res.Health.Apps) > 0 {
			return nil, fmt.Errorf("%s", res.Health.Apps[0].Error)
		}
		return nil, fmt.Errorf("local re-run produced nothing")
	}
	return res.Apps[0].Suite, nil
}

// TracesResult is a distributed corpus load: the merged suites and
// health, in exactly the order and shape report.LoadTraceDirContext
// would have produced on one node.
type TracesResult struct {
	Suites []*trace.Suite
	Health *report.StudyHealth
}

// RunTraces loads the trace corpus under dir across the worker pool:
// the sorted file list is carved into shards contiguous ranges
// (0 means one per worker), each loaded remotely with the same
// recovery ladder as study shards, and the per-app session lists are
// concatenated in shard order — which for contiguous ranges is sorted
// path order, so the merged suites and health ledger are
// byte-identical to a single-node LoadTraceDirContext scan. Analysis
// is the caller's (AnalyzeSuitesContext), as in the single-node flow.
func (c *Coordinator) RunTraces(ctx context.Context, dir string, o report.LoadOptions, shards int) (*TracesResult, error) {
	paths, err := report.ListTraceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("report: no trace files under %s", dir)
	}
	if shards <= 0 {
		shards = len(c.opt.Workers)
	}
	if shards > len(paths) {
		shards = len(paths)
	}

	health := &report.StudyHealth{}
	byApp := make(map[string]*trace.Suite)
	var order []string
	for i := 0; i < shards; i++ {
		// Contiguous range [lo, hi): shard boundaries in sorted path
		// order, so in-order concatenation reproduces the full scan.
		lo, hi := i*len(paths)/shards, (i+1)*len(paths)/shards
		label := fmt.Sprintf("files[%d:%d]", lo, hi)
		st, err := c.traceShard(ctx, dir, o, paths[lo:hi], label)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			// Itemized loss: the shard's files are recorded, never
			// silently dropped.
			health.Apps = append(health.Apps, report.AppHealth{
				App: label, Error: err.Error(), Reason: report.LossShard})
			health.SessionsSkipped += hi - lo
			continue
		}
		health.Merge(st.Health)
		for _, suite := range st.Suites {
			dst := byApp[suite.App]
			if dst == nil {
				dst = &trace.Suite{App: suite.App}
				byApp[suite.App] = dst
				order = append(order, suite.App)
			}
			dst.Sessions = append(dst.Sessions, suite.Sessions...)
		}
	}
	if len(byApp) == 0 {
		return &TracesResult{Health: health}, fmt.Errorf(
			"report: no loadable trace sessions under %s (%d files failed)", dir, len(health.Files))
	}
	sort.Strings(order)
	res := &TracesResult{Health: health}
	for _, app := range order {
		res.Suites = append(res.Suites, byApp[app])
	}
	return res, nil
}

// traceShard loads one contiguous file range remotely, degrading to a
// coordinator-local load when the remote budget is exhausted.
func (c *Coordinator) traceShard(ctx context.Context, dir string, o report.LoadOptions, files []string, label string) (*serve.ShardState, error) {
	spec := serve.JobSpec{Kind: "shard", Dir: dir, Files: files, Salvage: o.Salvage}
	st, attempts, err := c.runShard(ctx, label, spec)
	if err == nil {
		return st, nil
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	c.mu.Lock()
	c.stats.Degraded++
	c.mu.Unlock()
	mDegraded.Add(1)
	if c.opt.NoLocalFallback {
		c.mu.Lock()
		c.stats.Lost++
		c.mu.Unlock()
		return nil, &ShardLostError{Shard: label, Attempts: attempts, Err: err}
	}
	c.log.Warn("dist: trace shard degraded to local load", "shard", label, "err", err)
	lo := o
	lo.Paths = files
	suites, health, lerr := report.LoadTraceDirContext(ctx, dir, lo)
	if lerr != nil && health == nil {
		c.mu.Lock()
		c.stats.Lost++
		c.mu.Unlock()
		return nil, &ShardLostError{Shard: label, Attempts: attempts,
			Err: fmt.Errorf("remote: %v; local load: %w", err, lerr)}
	}
	c.mu.Lock()
	c.stats.LocalReruns++
	c.mu.Unlock()
	// A local load with health (even all-files-failed) mirrors what a
	// worker shard would have returned: itemized file damage, not a
	// lost shard.
	return &serve.ShardState{Suites: suites, Health: health}, nil
}
