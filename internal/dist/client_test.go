package dist

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestBackoffDeterministicJitter(t *testing.T) {
	base, max := 10*time.Millisecond, time.Second
	for attempt := 1; attempt <= 5; attempt++ {
		a := Backoff(base, attempt, "shard-a", 0, max)
		b := Backoff(base, attempt, "shard-a", 0, max)
		if a != b {
			t.Errorf("attempt %d: %s vs %s — jitter is not deterministic", attempt, a, b)
		}
		// Jitter stays inside [0.75, 1.25) of the exponential step.
		exp := base << (attempt - 1)
		if a < exp*3/4 || a > exp*5/4 {
			t.Errorf("attempt %d: %s outside jitter window of %s", attempt, a, exp)
		}
	}
	// Distinct shards desynchronize.
	same := true
	for attempt := 1; attempt <= 5; attempt++ {
		if Backoff(base, attempt, "shard-a", 0, max) != Backoff(base, attempt, "shard-b", 0, max) {
			same = false
		}
	}
	if same {
		t.Error("different shards share an identical backoff schedule")
	}
}

func TestBackoffRetryAfterHint(t *testing.T) {
	base, max := 10*time.Millisecond, 500*time.Millisecond
	// A modest hint raises the floor above the exponential step.
	if d := Backoff(base, 1, "s", 200*time.Millisecond, max); d < 150*time.Millisecond {
		t.Errorf("hinted backoff = %s, want at least 0.75×hint", d)
	}
	// A hostile hint cannot stretch past the cap: the retry budget
	// wins over the server's Retry-After.
	if d := Backoff(base, 1, "s", time.Hour, max); d > max {
		t.Errorf("hinted backoff = %s exceeds cap %s", d, max)
	}
}

func TestBackoffCap(t *testing.T) {
	max := 100 * time.Millisecond
	for attempt := 1; attempt <= 20; attempt++ {
		if d := Backoff(50*time.Millisecond, attempt, "s", 0, max); d > max {
			t.Errorf("attempt %d: %s exceeds cap %s", attempt, d, max)
		}
	}
}

// TestPoolEjectionAndReadmission: consecutive failures eject a
// worker; after the cooldown a healthy /healthz probe re-admits it,
// and a draining one keeps it out.
func TestPoolEjectionAndReadmission(t *testing.T) {
	draining := false
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			http.NotFound(w, r)
			return
		}
		if draining {
			http.Error(w, `{"ok":false,"draining":true}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"ok":true,"draining":false}`))
	}))
	defer ts.Close()

	ejected := 0
	p := newWorkerPool(Options{
		Workers:       []string{ts.URL},
		EjectAfter:    2,
		EjectCooldown: 5 * time.Millisecond,
	}, http.DefaultClient, func(string, error) { ejected++ })

	w, _ := p.pick("s", 1)
	if w == nil {
		t.Fatal("fresh pool has no workers")
	}
	p.record(w, errTest)
	if w2, _ := p.pick("s", 2); w2 == nil {
		t.Fatal("one strike ejected the worker early")
	}
	p.record(w, errTest)
	if ejected != 1 {
		t.Fatalf("ejections = %d, want 1 after the strike limit", ejected)
	}
	if w2, _ := p.pick("s", 3); w2 != nil {
		t.Fatal("ejected worker still picked before cooldown")
	}

	// Cooldown elapses; the healthy probe re-admits.
	time.Sleep(10 * time.Millisecond)
	if w2, _ := p.pick("s", 4); w2 == nil {
		t.Fatal("healthy worker not re-admitted after cooldown")
	}

	// Eject again, but this time the worker is draining: the probe
	// answers 503 and the worker stays out.
	draining = true
	p.record(w, errTest)
	p.record(w, errTest)
	if ejected != 2 {
		t.Fatalf("ejections = %d, want 2", ejected)
	}
	time.Sleep(10 * time.Millisecond)
	if w2, _ := p.pick("s", 5); w2 != nil {
		t.Fatal("draining worker re-admitted")
	}
}

// TestPoolDrainingEjectsImmediately: a 503 submit answer ejects on
// the first strike — no point burning the strike budget on a worker
// that told us it is leaving.
func TestPoolDrainingEjectsImmediately(t *testing.T) {
	ejected := 0
	p := newWorkerPool(Options{
		Workers:       []string{"http://w1", "http://w2"},
		EjectAfter:    5,
		EjectCooldown: time.Hour,
	}, http.DefaultClient, func(string, error) { ejected++ })
	w, _ := p.pick("s", 1)
	p.record(w, errDraining)
	if ejected != 1 {
		t.Fatalf("ejections = %d, want immediate ejection on draining", ejected)
	}
	if w2, _ := p.pick("s", 1); w2 == w {
		t.Error("draining worker picked again")
	}
}

var errTest = http.ErrHandlerTimeout
