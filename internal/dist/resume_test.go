package dist

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"

	"lagalyzer/internal/report"
)

// countingTransport counts shard submissions and optionally cancels
// the coordinator's context when the Nth submission starts — the
// "coordinator crashed mid-study" lever.
type countingTransport struct {
	base           http.RoundTripper
	cancelAtSubmit int
	cancel         context.CancelFunc

	mu      sync.Mutex
	submits int
}

func (c *countingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.Method == "POST" && strings.HasSuffix(req.URL.Path, "/jobs") {
		c.mu.Lock()
		c.submits++
		n := c.submits
		c.mu.Unlock()
		if c.cancelAtSubmit > 0 && n >= c.cancelAtSubmit && c.cancel != nil {
			c.cancel()
			return nil, context.Canceled
		}
	}
	return c.base.RoundTrip(req)
}

func (c *countingTransport) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.submits
}

// TestDistResumeAfterCoordinatorCrash: a coordinator torn down
// mid-study leaves its completed shards in the checkpoint store; a
// fresh coordinator over the same store re-dispatches ONLY the
// missing shard and produces output byte-identical to an
// uninterrupted single-node run.
func TestDistResumeAfterCoordinatorCrash(t *testing.T) {
	want, _ := localGolden(t)
	ckpt := t.TempDir()
	cfg := studyConfig(t)
	cfg.CheckpointDir = ckpt

	// Run 1: the third shard submission kills the coordinator.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ct := &countingTransport{base: http.DefaultTransport, cancelAtSubmit: 3, cancel: cancel}
	c1, err := New(Options{Workers: startWorkers(t, 2), HTTPClient: &http.Client{Transport: ct}})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := c1.RunStudy(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("crashed run err = %v, want context.Canceled", err)
	}
	if res1 == nil || len(res1.Apps) != 2 {
		t.Fatalf("crashed run salvaged %d apps, want the 2 completed ones", len(res1.Apps))
	}
	if len(res1.Health.Apps) != 1 || res1.Health.Apps[0].Reason != report.LossCanceled {
		t.Fatalf("crashed run health = %+v, want the abandoned app marked canceled",
			res1.Health.Apps)
	}

	// Run 2: fresh coordinator, same checkpoint store. The two
	// completed shards resume from the store; only the third is
	// dispatched.
	ct2 := &countingTransport{base: http.DefaultTransport}
	c2, err := New(Options{Workers: startWorkers(t, 2), HTTPClient: &http.Client{Transport: ct2}})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := c2.RunStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := ct2.count(); got != 1 {
		t.Errorf("resumed run submitted %d shards, want 1 (two served from checkpoint)", got)
	}
	if got := formatted(res2); got != want {
		t.Errorf("resumed distributed output diverges from single-node:\n--- got ---\n%s\n--- want ---\n%s",
			got, want)
	}
}

// TestDistCheckpointSharedCache: the checkpoint store is a shared
// result cache across execution shapes — a completed LOCAL run means
// a distributed run over the same store dispatches nothing at all
// (the config hash deliberately excludes execution-shape knobs).
func TestDistCheckpointSharedCache(t *testing.T) {
	want, _ := localGolden(t)
	ckpt := t.TempDir()
	cfg := studyConfig(t)
	cfg.CheckpointDir = ckpt

	if _, err := report.RunStudy(cfg); err != nil {
		t.Fatal(err)
	}

	ct := &countingTransport{base: http.DefaultTransport}
	c, err := New(Options{Workers: startWorkers(t, 2), HTTPClient: &http.Client{Transport: ct}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := ct.count(); got != 0 {
		t.Errorf("distributed run over a warm cache submitted %d shards, want 0", got)
	}
	if got := formatted(res); got != want {
		t.Errorf("cache-served distributed output diverges:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
