package checkpoint

import (
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"lagalyzer/internal/apps"
	"lagalyzer/internal/faultinject"
	"lagalyzer/internal/sim"
	"lagalyzer/internal/trace"
)

// testSuite simulates a small deterministic suite to checkpoint.
func testSuite(t *testing.T) *trace.Suite {
	t.Helper()
	p := apps.CrosswordSage()
	var sessions []*trace.Session
	for i := 0; i < 2; i++ {
		s, err := sim.Run(sim.Config{Profile: p, SessionID: i, Seed: 7, SessionSeconds: 20})
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
	}
	return &trace.Suite{App: p.Name, Sessions: sessions}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	suite := testSuite(t)

	st, err := Open(dir, "hash-a")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Load(suite.App); ok {
		t.Fatal("Load hit on an empty store")
	}
	if err := st.Save(suite); err != nil {
		t.Fatal(err)
	}

	// A reopened store (the resume path) must reproduce the suite
	// exactly: same sessions, structurally equal down to the episode
	// trees and sampling ticks.
	st2, err := Open(dir, "hash-a")
	if err != nil {
		t.Fatal(err)
	}
	got, ok := st2.Load(suite.App)
	if !ok {
		t.Fatal("Load missed after Save + reopen")
	}
	if got.App != suite.App || len(got.Sessions) != len(suite.Sessions) {
		t.Fatalf("suite shape: got %s/%d sessions, want %s/%d",
			got.App, len(got.Sessions), suite.App, len(suite.Sessions))
	}
	for i := range suite.Sessions {
		if !reflect.DeepEqual(got.Sessions[i], suite.Sessions[i]) {
			t.Errorf("session %d differs after round trip", i)
		}
	}
	if apps := st2.Apps(); len(apps) != 1 || apps[0] != suite.App {
		t.Errorf("Apps() = %v, want [%s]", apps, suite.App)
	}
}

func TestConfigHashMismatchInvalidatesStore(t *testing.T) {
	dir := t.TempDir()
	suite := testSuite(t)
	st, err := Open(dir, "hash-a")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(suite); err != nil {
		t.Fatal(err)
	}

	// Same directory, different configuration: the store must start
	// empty and drop the stale payloads from disk.
	st2, err := Open(dir, "hash-b")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st2.Load(suite.App); ok {
		t.Fatal("Load hit across a config-hash change")
	}
	entries, err := os.ReadDir(filepath.Join(dir, "apps"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("stale payloads not cleaned: %d files remain", len(entries))
	}
}

func TestCorruptPayloadIsMiss(t *testing.T) {
	dir := t.TempDir()
	suite := testSuite(t)
	st, err := Open(dir, "h")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(suite); err != nil {
		t.Fatal(err)
	}

	// Flip bits in the payload on disk: the digest check must turn the
	// load into a miss, never a wrong result or a crash.
	entries, err := os.ReadDir(filepath.Join(dir, "apps"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("want exactly one payload file, got %d (err %v)", len(entries), err)
	}
	path := filepath.Join(dir, "apps", entries[0].Name())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, faultinject.FlipBits(data, 3, 8, 0, 0), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, "h")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st2.Load(suite.App); ok {
		t.Fatal("Load hit on a corrupted payload")
	}
}

func TestTruncatedManifestResets(t *testing.T) {
	dir := t.TempDir()
	suite := testSuite(t)
	st, err := Open(dir, "h")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(suite); err != nil {
		t.Fatal(err)
	}

	// Simulate a torn manifest (should be impossible given the atomic
	// writes, but belt and suspenders for foreign tools): Open must
	// degrade to an empty store, not fail.
	mp := filepath.Join(dir, "manifest.json")
	data, err := os.ReadFile(mp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mp, faultinject.TruncateFrac(data, 0.5), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, "h")
	if err != nil {
		t.Fatalf("Open failed on a torn manifest: %v", err)
	}
	if _, ok := st2.Load(suite.App); ok {
		t.Fatal("Load hit through a torn manifest")
	}
}

func TestOrphanPayloadGarbageCollected(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, "h")
	if err != nil {
		t.Fatal(err)
	}
	_ = st
	// A crash between the payload write and the manifest update leaves
	// an unreferenced payload; the next Open collects it.
	orphan := filepath.Join(dir, "apps", "deadbeef.gob")
	if err := os.WriteFile(orphan, []byte("orphan"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, "h"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Errorf("orphan payload survived garbage collection (stat err %v)", err)
	}
}

func TestFaultWrappedReaders(t *testing.T) {
	dir := t.TempDir()
	suite := testSuite(t)
	st, err := Open(dir, "h")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(suite); err != nil {
		t.Fatal(err)
	}

	// A stalling, short-read source still delivers the exact bytes —
	// loads must succeed (slowly), proving the read path has no framing
	// assumptions.
	slow, err := OpenOptions(dir, "h", Options{
		WrapReader: func(r io.Reader) io.Reader {
			return faultinject.NewStallReader(faultinject.NewShortReader(r, 11), 512, time.Microsecond)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := slow.Load(suite.App); !ok {
		t.Fatal("Load missed under stall+short-read injection")
	}

	// A source that dies mid-transfer must degrade to a miss.
	cut, err := OpenOptions(dir, "h", Options{
		WrapReader: func(r io.Reader) io.Reader {
			return faultinject.NewTruncatingReader(r, 100)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cut.Load(suite.App); ok {
		t.Fatal("Load hit through a truncated transfer")
	}
}

// TestTruncatedPayloadIsMiss: a payload cut short on disk (torn
// write, full filesystem) must degrade to a re-run miss — never a
// partial suite or a crash.
func TestTruncatedPayloadIsMiss(t *testing.T) {
	dir := t.TempDir()
	suite := testSuite(t)
	st, err := Open(dir, "h")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(suite); err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(filepath.Join(dir, "apps"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("want exactly one payload file, got %d (err %v)", len(entries), err)
	}
	path := filepath.Join(dir, "apps", entries[0].Name())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, faultinject.TruncateFrac(data, 0.7), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, "h")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st2.Load(suite.App); ok {
		t.Fatal("Load hit on a truncated payload")
	}
	// The store stays usable: a fresh Save repairs the entry.
	if err := st2.Save(suite); err != nil {
		t.Fatal(err)
	}
	if _, ok := st2.Load(suite.App); !ok {
		t.Fatal("re-saved entry does not load")
	}
}

// TestCorruptManifestResets: seeded bit flips in the manifest must
// degrade Open to an empty store (re-run everything), never to
// loading under a wrong configuration or crashing.
func TestCorruptManifestResets(t *testing.T) {
	dir := t.TempDir()
	suite := testSuite(t)
	st, err := Open(dir, "h")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(suite); err != nil {
		t.Fatal(err)
	}

	mp := filepath.Join(dir, "manifest.json")
	data, err := os.ReadFile(mp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mp, faultinject.FlipBits(data, 19, 12, 0, 0), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, "h")
	if err != nil {
		t.Fatalf("Open failed on a bit-flipped manifest: %v", err)
	}
	if _, ok := st2.Load(suite.App); ok {
		t.Fatal("Load hit through a bit-flipped manifest")
	}
}
