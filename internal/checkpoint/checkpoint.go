// Package checkpoint is the crash-safety layer under resumable
// studies: a content-addressed on-disk store of completed per-app
// work, written with atomic tmp+rename operations so that a process
// killed at ANY instant — including SIGKILL mid-write — leaves the
// store either without an entry or with a complete, verified one,
// never with a torn file.
//
// The unit of checkpointing is one application's finished session
// suite: the expensive phase of a study (simulation or ingest). The
// analysis derived from a suite is a deterministic, cheap function of
// it (the fused engine's byte-identical guarantee), so a resume loads
// the suite and re-derives the analysis instead of persisting the
// intertwined result graph. A study killed mid-run and restarted with
// the same configuration therefore produces byte-identical output to
// an uninterrupted run, skipping the work already checkpointed.
//
// Layout under the store directory (lagreport uses <out>/.checkpoint):
//
//	manifest.json      config hash, git SHA, app name → entry digest
//	apps/<digest>.gob  gob-encoded session suites, named by content
//
// Consistency protocol: an app's payload file is written (and synced)
// before the manifest references it, and both writes are atomic
// renames. A crash between the two leaves an unreferenced payload —
// garbage, collected on the next Open — never a dangling reference.
// Loads verify the payload's SHA-256 against the manifest digest; any
// mismatch (bit rot, partial copy) is treated as a miss, and the app
// is simply re-run.
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"sync"

	"lagalyzer/internal/obs"
	"lagalyzer/internal/trace"
)

// Checkpoint metrics: hits are the re-runs avoided on resume; errors
// count store-level failures that degraded to a miss (the study always
// proceeds — a broken checkpoint never breaks a run).
var (
	mHits = obs.NewCounter("checkpoint_hits_total",
		"apps restored from the checkpoint store instead of re-run")
	mSaves = obs.NewCounter("checkpoint_saves_total",
		"app suites persisted to the checkpoint store")
	mErrors = obs.NewCounter("checkpoint_errors_total",
		"checkpoint store failures degraded to a miss or skipped save")
)

// manifestVersion is bumped whenever the payload encoding changes; a
// version mismatch invalidates the whole store.
const manifestVersion = 1

// Entry references one checkpointed app in the manifest.
type Entry struct {
	// Digest is the SHA-256 of the payload file, hex-encoded. The
	// payload file is named after it (content addressing), and loads
	// re-verify it.
	Digest string `json:"digest"`
	// Sessions is the suite's session count (informational).
	Sessions int `json:"sessions"`
}

// Manifest is the store's index, rewritten atomically after every
// completed app.
type Manifest struct {
	Version    int              `json:"version"`
	ConfigHash string           `json:"config_hash"`
	GitSHA     string           `json:"git_sha,omitempty"`
	Apps       map[string]Entry `json:"apps"`
}

// Options configure a Store beyond the defaults.
type Options struct {
	// WrapReader, when non-nil, wraps every payload read — a fault
	// injection point for the chaos tests (stalls, short reads). It
	// must not change the delivered bytes.
	WrapReader func(io.Reader) io.Reader
}

// Store is a content-addressed checkpoint directory bound to one
// configuration hash. It is safe for concurrent use by the study's
// worker pool.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	manifest Manifest
}

// Open creates or reopens the store at dir for the given configuration
// hash. An existing manifest with a different hash or version is
// discarded (its payload files are removed best-effort): checkpoints
// are only ever reused for the exact configuration that produced them.
func Open(dir, configHash string) (*Store, error) {
	return OpenOptions(dir, configHash, Options{})
}

// OpenOptions is Open with explicit options.
func OpenOptions(dir, configHash string, opts Options) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "apps"), 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	s := &Store{dir: dir, opts: opts}
	s.manifest = Manifest{
		Version:    manifestVersion,
		ConfigHash: configHash,
		GitSHA:     vcsRevision(),
		Apps:       map[string]Entry{},
	}

	data, err := os.ReadFile(s.manifestPath())
	if err == nil {
		var m Manifest
		if json.Unmarshal(data, &m) == nil &&
			m.Version == manifestVersion && m.ConfigHash == configHash {
			if m.Apps == nil {
				m.Apps = map[string]Entry{}
			}
			if m.GitSHA == "" {
				m.GitSHA = s.manifest.GitSHA
			}
			s.manifest = m
		} else {
			// Stale store for another configuration or format: drop the
			// payloads so the directory cannot grow without bound.
			s.removeAllPayloads()
		}
	}
	s.collectGarbage()
	if err := s.writeManifest(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// ConfigHash returns the configuration hash the store is bound to.
func (s *Store) ConfigHash() string { return s.manifest.ConfigHash }

// Apps returns the checkpointed app names, sorted.
func (s *Store) Apps() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.manifest.Apps))
	for name := range s.manifest.Apps {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// payload is the gob wire form of one checkpointed app.
type payload struct {
	App      string
	Sessions []*trace.Session
}

// Save persists one completed app's session suite: payload first
// (atomic, synced), manifest second (atomic), so a crash between the
// two never leaves a reference to a missing or partial file.
func (s *Store) Save(suite *trace.Suite) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(payload{App: suite.App, Sessions: suite.Sessions}); err != nil {
		mErrors.Inc()
		return fmt.Errorf("checkpoint: encoding %s: %w", suite.App, err)
	}
	sum := sha256.Sum256(buf.Bytes())
	digest := hex.EncodeToString(sum[:])
	if err := obs.WriteFileAtomic(s.payloadPath(digest), buf.Bytes(), 0o644); err != nil {
		mErrors.Inc()
		return fmt.Errorf("checkpoint: writing %s: %w", suite.App, err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.manifest.Apps[suite.App] = Entry{Digest: digest, Sessions: len(suite.Sessions)}
	if err := s.writeManifest(); err != nil {
		mErrors.Inc()
		return err
	}
	mSaves.Inc()
	return nil
}

// Load returns the checkpointed suite for app, or (nil, false) on any
// miss: no entry, unreadable payload, digest mismatch, or decode
// failure. A miss is never an error — the caller just re-runs the app.
func (s *Store) Load(app string) (*trace.Suite, bool) {
	s.mu.Lock()
	entry, ok := s.manifest.Apps[app]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	f, err := os.Open(s.payloadPath(entry.Digest))
	if err != nil {
		mErrors.Inc()
		return nil, false
	}
	defer f.Close()
	var r io.Reader = f
	if s.opts.WrapReader != nil {
		r = s.opts.WrapReader(r)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		mErrors.Inc()
		return nil, false
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != entry.Digest {
		mErrors.Inc()
		return nil, false
	}
	var p payload
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&p); err != nil {
		mErrors.Inc()
		return nil, false
	}
	if p.App != app {
		mErrors.Inc()
		return nil, false
	}
	mHits.Inc()
	return &trace.Suite{App: p.App, Sessions: p.Sessions}, true
}

func (s *Store) manifestPath() string { return filepath.Join(s.dir, "manifest.json") }

func (s *Store) payloadPath(digest string) string {
	return filepath.Join(s.dir, "apps", digest+".gob")
}

// writeManifest serializes the manifest atomically. Callers hold s.mu
// (or have exclusive access during Open).
func (s *Store) writeManifest() error {
	data, err := json.MarshalIndent(s.manifest, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := obs.WriteFileAtomic(s.manifestPath(), append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// collectGarbage removes payload files the manifest does not
// reference: leftovers from a crash between payload and manifest
// writes, or from a discarded stale store. Best-effort.
func (s *Store) collectGarbage() {
	referenced := map[string]bool{}
	for _, e := range s.manifest.Apps {
		referenced[e.Digest+".gob"] = true
	}
	entries, err := os.ReadDir(filepath.Join(s.dir, "apps"))
	if err != nil {
		return
	}
	for _, de := range entries {
		if !referenced[de.Name()] {
			os.Remove(filepath.Join(s.dir, "apps", de.Name()))
		}
	}
}

// removeAllPayloads clears the apps directory (stale-store reset).
func (s *Store) removeAllPayloads() {
	entries, err := os.ReadDir(filepath.Join(s.dir, "apps"))
	if err != nil {
		return
	}
	for _, de := range entries {
		os.Remove(filepath.Join(s.dir, "apps", de.Name()))
	}
}

// vcsRevision returns the git revision embedded by the Go build, or
// "" when unavailable (e.g. test binaries). Informational only: the
// revision never participates in hit/miss decisions, because the
// checkpointed payload is raw simulated/ingested data whose validity
// is governed by the configuration hash alone.
func vcsRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, kv := range info.Settings {
		if kv.Key == "vcs.revision" {
			return kv.Value
		}
	}
	return ""
}
