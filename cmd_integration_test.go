package lagalyzer

// End-to-end tests of the command-line tools: build the real binaries
// and drive the lilasim → lagalyzer → lagreport workflow through their
// public interfaces.

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"lagalyzer/internal/faultinject"
)

// buildTools compiles the three commands once per test binary run.
var buildTools = sync.OnceValues(func() (map[string]string, error) {
	dir, err := os.MkdirTemp("", "lagalyzer-tools")
	if err != nil {
		return nil, err
	}
	tools := map[string]string{}
	for _, name := range []string{"lilasim", "lagalyzer", "lagreport"} {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		if out, err := cmd.CombinedOutput(); err != nil {
			return nil, &buildError{name: name, out: string(out), err: err}
		}
		tools[name] = bin
	}
	return tools, nil
})

type buildError struct {
	name string
	out  string
	err  error
}

func (e *buildError) Error() string { return e.name + ": " + e.err.Error() + "\n" + e.out }

func tool(t *testing.T, name string) string {
	t.Helper()
	tools, err := buildTools()
	if err != nil {
		t.Fatalf("building tools: %v", err)
	}
	return tools[name]
}

func run(t *testing.T, bin string, stdin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "cs.lila")

	// lilasim: list profiles, then generate a binary trace.
	list := run(t, tool(t, "lilasim"), "", "-list")
	if !strings.Contains(list, "NetBeans") || !strings.Contains(list, "45367") {
		t.Errorf("lilasim -list output:\n%s", list)
	}
	gen := run(t, tool(t, "lilasim"), "",
		"-app", "CrosswordSage", "-seconds", "20", "-seed", "3", "-format", "binary", "-o", traceFile)
	if !strings.Contains(gen, "wrote") {
		t.Errorf("lilasim output: %s", gen)
	}
	if fi, err := os.Stat(traceFile); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file missing: %v", err)
	}

	// lagalyzer stats includes the threshold sweep.
	stats := run(t, tool(t, "lagalyzer"), "", "stats", traceFile)
	for _, want := range []string{"CrosswordSage/0", "triggers (all)", "threshold sensitivity", ">=225.0ms"} {
		if !strings.Contains(stats, want) {
			t.Errorf("stats output missing %q:\n%s", want, stats)
		}
	}

	// patterns table with GC column.
	pats := run(t, tool(t, "lagalyzer"), "", "patterns", "-n", "5", "-sort", "total", traceFile)
	for _, want := range []string{"patterns:", "gc%", "dispatch("} {
		if !strings.Contains(pats, want) {
			t.Errorf("patterns output missing %q:\n%s", want, pats)
		}
	}

	// sketch to SVG.
	svgFile := filepath.Join(dir, "ep.svg")
	run(t, tool(t, "lagalyzer"), "", "sketch", "-svg", svgFile, traceFile)
	svg, err := os.ReadFile(svgFile)
	if err != nil || !strings.Contains(string(svg), "<svg") {
		t.Errorf("sketch SVG: %v", err)
	}

	// timeline (text form).
	tl := run(t, tool(t, "lagalyzer"), "", "timeline", traceFile)
	if !strings.Contains(tl, "CrosswordSage/0") || !strings.Contains(tl, "gc") {
		t.Errorf("timeline output:\n%s", tl)
	}

	// streaming statistics.
	st := run(t, tool(t, "lagalyzer"), "", "stream", traceFile)
	if !strings.Contains(st, "episodes") || !strings.Contains(st, "runnable threads") {
		t.Errorf("stream output:\n%s", st)
	}

	// interactive browser driven by a scripted session.
	script := "list 3\nsel 0\neps\nsketch\nnext\nquit\n"
	br := run(t, tool(t, "lagalyzer"), script, "browse", traceFile)
	for _, want := range []string{"patterns:", "episode(s)", "dispatch"} {
		if !strings.Contains(br, want) {
			t.Errorf("browse output missing %q", want)
		}
	}

	// diff between two seeds.
	trace2 := filepath.Join(dir, "cs2.lila")
	run(t, tool(t, "lilasim"), "", "-app", "CrosswordSage", "-seconds", "20", "-seed", "8", "-o", trace2)
	df := run(t, tool(t, "lagalyzer"), "", "diff", traceFile, trace2)
	if !strings.Contains(df, "patterns:") || !strings.Contains(df, "perceptible episodes:") {
		t.Errorf("diff output:\n%s", df)
	}
}

func TestCLILagreport(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()

	// Scaled-down simulated study with figure output.
	out := run(t, tool(t, "lagreport"), "",
		"-sessions", "1", "-seconds", "20", "-only", "table3,findings", "-out", dir)
	for _, want := range []string{"Table III", "fig5.jmol.output", "report.html"} {
		if !strings.Contains(out, want) {
			t.Errorf("lagreport output missing %q", want)
		}
	}
	for _, name := range []string{"figure3_pattern_cdf.svg", "experiments.md", "report.html"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing artifact %s: %v", name, err)
		}
	}

	// Trace-directory mode.
	traceDir := t.TempDir()
	run(t, tool(t, "lilasim"), "", "-app", "JEdit", "-seconds", "15", "-o", filepath.Join(traceDir, "a.lila"))
	out = run(t, tool(t, "lagreport"), "", "-traces", traceDir, "-only", "table3")
	if !strings.Contains(out, "JEdit") {
		t.Errorf("trace-dir lagreport output:\n%s", out)
	}
}

// TestCLIObservability exercises the telemetry surface end to end:
// runmeta.json next to the figures, progress lines with an ETA, the
// phase summary, the debug server banner, and the profiling flags.
func TestCLIObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()

	out := run(t, tool(t, "lagreport"), "",
		"-sessions", "1", "-seconds", "20", "-only", "table3", "-out", dir,
		"-progress", "-phases", "-debug-addr", "127.0.0.1:0")
	for _, want := range []string{
		"runmeta.json",                 // artifact list mentions the manifest
		"report: ",                     // progress lines
		"eta",                          // with an ETA
		"== phase summary ==", "study", // span summary on stderr
		"debug server on http://127.0.0.1:", // live endpoint banner
	} {
		if !strings.Contains(out, want) {
			t.Errorf("lagreport observability output missing %q:\n%s", want, out)
		}
	}

	meta, err := os.ReadFile(filepath.Join(dir, "runmeta.json"))
	if err != nil {
		t.Fatalf("runmeta.json: %v", err)
	}
	for _, want := range []string{
		`"tool": "lagreport"`,
		`"go_version"`,
		`"gomaxprocs"`,
		`"phases"`,
		`"path": "study"`,
		`"metrics"`,
		`"engine_episodes_total"`,
		`"report_sessions_total"`,
		`"sessions": "1"`, // explicitly set flags are recorded
	} {
		if !strings.Contains(string(meta), want) {
			t.Errorf("runmeta.json missing %s:\n%s", want, meta)
		}
	}

	// Profiling flags on lilasim and lagalyzer.
	cpuOut := filepath.Join(dir, "cpu.out")
	memOut := filepath.Join(dir, "mem.out")
	traceFile := filepath.Join(dir, "p.lila")
	run(t, tool(t, "lilasim"), "", "-cpuprofile", cpuOut,
		"-app", "CrosswordSage", "-seconds", "15", "-o", traceFile)
	if fi, err := os.Stat(cpuOut); err != nil || fi.Size() == 0 {
		t.Errorf("lilasim -cpuprofile produced nothing: %v", err)
	}
	st := run(t, tool(t, "lagalyzer"), "", "-memprofile", memOut, "stream", traceFile)
	if !strings.Contains(st, "records/s") || !strings.Contains(st, "MB/s") {
		t.Errorf("lagalyzer stream missing throughput line:\n%s", st)
	}
	if fi, err := os.Stat(memOut); err != nil || fi.Size() == 0 {
		t.Errorf("lagalyzer -memprofile produced nothing: %v", err)
	}
}

// runCode runs a built tool and returns its exit code and combined
// output, failing only when the process could not be started at all.
func runCode(t *testing.T, bin string, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
		}
		return ee.ExitCode(), string(out)
	}
	return 0, string(out)
}

// TestCLIFaultTolerance drives the robustness surface end to end: a
// trace directory holding one intact, one truncated, and one
// bit-flipped file must still produce a study. By default the damaged
// files are skipped and lagreport exits 3 (partial success); -strict
// aborts on the first bad file; -salvage decodes past the damage and
// keeps every session, reporting what was lost in the Health section
// and runmeta.json.
func TestCLIFaultTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	traceDir := t.TempDir()
	intact := filepath.Join(traceDir, "a_jedit.lila")
	truncated := filepath.Join(traceDir, "b_trunc.lila")
	flipped := filepath.Join(traceDir, "c_flip.lila")
	run(t, tool(t, "lilasim"), "", "-app", "JEdit", "-seconds", "15", "-format", "binary", "-o", intact)
	run(t, tool(t, "lilasim"), "", "-app", "CrosswordSage", "-seconds", "15", "-format", "binary", "-o", truncated)
	run(t, tool(t, "lilasim"), "", "-app", "CrosswordSage", "-session", "1", "-seconds", "15", "-format", "binary", "-o", flipped)

	damage := func(path string, f func([]byte) []byte) {
		t.Helper()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, f(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	damage(truncated, func(b []byte) []byte { return faultinject.TruncateFrac(b, 0.55) })
	damage(flipped, func(b []byte) []byte { return faultinject.FlipBits(b, 7, 12, 64, len(b)) })

	// Default: damaged files are skipped, the intact session is
	// analyzed, and the partial loss surfaces as exit code 3.
	code, out := runCode(t, tool(t, "lagreport"), "-traces", traceDir, "-only", "table3")
	if code != 3 {
		t.Errorf("default over damaged dir: exit %d, want 3\n%s", code, out)
	}
	for _, want := range []string{"JEdit", "Health: inputs lost or degraded", "partial results"} {
		if !strings.Contains(out, want) {
			t.Errorf("default output missing %q:\n%s", want, out)
		}
	}

	// -strict restores the historical fail-fast contract.
	code, out = runCode(t, tool(t, "lagreport"), "-traces", traceDir, "-only", "table3", "-strict")
	if code != 1 {
		t.Errorf("-strict over damaged dir: exit %d, want 1\n%s", code, out)
	}

	// -salvage keeps all three sessions: damage is worked around at the
	// record level, so no whole unit is lost and the run succeeds.
	outDir := t.TempDir()
	code, out = runCode(t, tool(t, "lagreport"), "-traces", traceDir, "-only", "table3", "-salvage", "-out", outDir)
	if code != 0 {
		t.Errorf("-salvage over damaged dir: exit %d, want 0\n%s", code, out)
	}
	for _, want := range []string{"JEdit", "CrosswordSage", "Health: inputs lost or degraded", "salvage"} {
		if !strings.Contains(out, want) {
			t.Errorf("-salvage output missing %q:\n%s", want, out)
		}
	}
	meta, err := os.ReadFile(filepath.Join(outDir, "runmeta.json"))
	if err != nil {
		t.Fatalf("runmeta.json: %v", err)
	}
	for _, want := range []string{`"health"`, `"salvage"`, `"lila_records_salvaged_total"`} {
		if !strings.Contains(string(meta), want) {
			t.Errorf("runmeta.json missing %s", want)
		}
	}
	page, err := os.ReadFile(filepath.Join(outDir, "report.html"))
	if err != nil {
		t.Fatalf("report.html: %v", err)
	}
	if !strings.Contains(string(page), "Health — inputs lost or degraded") {
		t.Error("HTML report missing the Health section")
	}

	// lagalyzer: strict by default (exit 1), salvages with -salvage
	// (exit 0, damage notes on stderr), and skips unrecoverable files
	// under -salvage with exit 3.
	code, _ = runCode(t, tool(t, "lagalyzer"), "stats", truncated)
	if code != 1 {
		t.Errorf("lagalyzer stats on truncated trace: exit %d, want 1", code)
	}
	code, out = runCode(t, tool(t, "lagalyzer"), "-salvage", "stats", truncated)
	if code != 0 {
		t.Errorf("lagalyzer -salvage stats on truncated trace: exit %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "CrosswordSage/0") || !strings.Contains(out, "salvage") {
		t.Errorf("lagalyzer -salvage output:\n%s", out)
	}
	junk := filepath.Join(t.TempDir(), "junk.lila")
	if err := os.WriteFile(junk, []byte("not a trace at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out = runCode(t, tool(t, "lagalyzer"), "-salvage", "stats", junk, intact)
	if code != 3 {
		t.Errorf("lagalyzer -salvage with unrecoverable file: exit %d, want 3\n%s", code, out)
	}
	if !strings.Contains(out, "skipped") || !strings.Contains(out, "JEdit/0") {
		t.Errorf("lagalyzer -salvage partial output:\n%s", out)
	}
}

// TestCLICheckpointKillResume is the crash-safety golden test: a study
// SIGKILLed mid-run and then rerun with the same flags must resume from
// the -out/.checkpoint store and produce byte-identical final output to
// an uninterrupted run — same stdout (modulo the elapsed time), same
// figures, same experiments.md, same report.html, and an equivalent
// runmeta.json once the volatile fields (timestamps, phase timings,
// metric values, the differing -out flag) are stripped.
func TestCLICheckpointKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := tool(t, "lagreport")
	studyArgs := func(out string) []string {
		return []string{"-sessions", "2", "-seconds", "60", "-seed", "7", "-out", out}
	}

	// Reference: the same study, uninterrupted.
	dirA := t.TempDir()
	outA := run(t, bin, "", studyArgs(dirA)...)

	// Victim: start the study, wait for the first app checkpoint to
	// land, then SIGKILL — no signal handler runs, no flush happens.
	dirB := t.TempDir()
	victim := exec.Command(bin, studyArgs(dirB)...)
	if err := victim.Start(); err != nil {
		t.Fatalf("starting victim run: %v", err)
	}
	manifest := filepath.Join(dirB, ".checkpoint", "manifest.json")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if data, err := os.ReadFile(manifest); err == nil && strings.Contains(string(data), `"digest"`) {
			break
		}
		if time.Now().After(deadline) {
			victim.Process.Kill()
			victim.Wait()
			t.Fatal("no checkpoint appeared within 30s")
		}
		time.Sleep(time.Millisecond)
	}
	if err := victim.Process.Kill(); err != nil {
		t.Logf("kill after completion (study finished before the signal): %v", err)
	}
	victim.Wait()

	// Resume: rerunning with the same flags must pick up the surviving
	// checkpoints and converge on the reference output.
	outB := run(t, bin, "", studyArgs(dirB)...)

	// The elapsed time and the -out directory are the only run-specific
	// parts of the study's stdout; everything else must match exactly.
	normalize := func(out string) string {
		lines := strings.Split(out, "\n")
		for i, ln := range lines {
			if strings.HasPrefix(ln, "analyzed ") {
				if cut := strings.LastIndex(ln, " in "); cut >= 0 {
					lines[i] = ln[:cut]
				}
			}
			if strings.HasPrefix(ln, "wrote ") {
				if cut := strings.LastIndex(ln, " to "); cut >= 0 {
					lines[i] = ln[:cut]
				}
			}
		}
		return strings.Join(lines, "\n")
	}
	if a, b := normalize(outA), normalize(outB); a != b {
		t.Errorf("resumed stdout differs from uninterrupted run:\n--- uninterrupted ---\n%s\n--- resumed ---\n%s", a, b)
	}

	// Every artifact except runmeta.json must be byte-identical.
	entries, err := os.ReadDir(dirA)
	if err != nil {
		t.Fatal(err)
	}
	compared := 0
	for _, e := range entries {
		if e.IsDir() || e.Name() == "runmeta.json" {
			continue
		}
		wantBytes, err := os.ReadFile(filepath.Join(dirA, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		gotBytes, err := os.ReadFile(filepath.Join(dirB, e.Name()))
		if err != nil {
			t.Errorf("resumed run missing artifact %s: %v", e.Name(), err)
			continue
		}
		if !bytes.Equal(wantBytes, gotBytes) {
			t.Errorf("artifact %s differs between uninterrupted and resumed runs", e.Name())
		}
		compared++
	}
	if compared < 3 { // at least the SVGs, experiments.md, and report.html
		t.Errorf("compared only %d artifacts, expected the full figure set", compared)
	}

	// runmeta.json: equivalent after dropping the volatile fields.
	loadMeta := func(dir string) map[string]any {
		t.Helper()
		data, err := os.ReadFile(filepath.Join(dir, "runmeta.json"))
		if err != nil {
			t.Fatalf("runmeta.json: %v", err)
		}
		var m map[string]any
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatalf("runmeta.json: %v", err)
		}
		return m
	}
	metaA, metaB := loadMeta(dirA), loadMeta(dirB)

	// The resumed run must have loaded at least one checkpoint instead
	// of recomputing everything from scratch.
	hits := func(m map[string]any) float64 {
		counters, _ := m["metrics"].(map[string]any)["counters"].(map[string]any)
		v, _ := counters["checkpoint_hits_total"].(float64)
		return v
	}
	if got := hits(metaB); got < 1 {
		t.Errorf("resumed run checkpoint_hits_total = %v, want >= 1", got)
	}

	for _, volatile := range []string{"started", "wall_clock", "phases", "metrics", "flags"} {
		delete(metaA, volatile)
		delete(metaB, volatile)
	}
	stableA, _ := json.Marshal(metaA)
	stableB, _ := json.Marshal(metaB)
	if !bytes.Equal(stableA, stableB) {
		t.Errorf("runmeta.json stable fields differ:\n%s\nvs\n%s", stableA, stableB)
	}
}

// TestCLIConvertGolden pins the convert round trip end to end: a study
// recorded as v1 traces, converted to v2 with `lagalyzer convert`, must
// analyze to byte-identical reports. This is the CI golden step for
// format independence at the tool level (the unit-level twin lives in
// internal/report).
func TestCLIConvertGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	simBin, lagBin, repBin := tool(t, "lilasim"), tool(t, "lagalyzer"), tool(t, "lagreport")

	// A small v1 study: two apps, two sessions each, mixed text and
	// binary encodings so convert exercises both v1 readers.
	v1Dir := t.TempDir()
	for i, app := range []string{"CrosswordSage", "GanttProject"} {
		for id := 0; id < 2; id++ {
			format := "binary"
			if (i+id)%2 == 1 {
				format = "text"
			}
			run(t, simBin, "", "-app", app, "-session", strconv.Itoa(id),
				"-seed", "11", "-seconds", "15", "-format", format,
				"-o", filepath.Join(v1Dir, app+"_"+strconv.Itoa(id)+".lila"))
		}
	}

	// Baseline: analyze the v1 study.
	outA := t.TempDir()
	stdoutA := run(t, repBin, "", "-traces", v1Dir, "-jobs", "1", "-out", outA)

	// Convert everything to v2 (convert -out keeps base names, so the
	// sorted ingest order matches the v1 directory's).
	v2Dir := t.TempDir()
	traces, err := filepath.Glob(filepath.Join(v1Dir, "*.lila"))
	if err != nil || len(traces) != 4 {
		t.Fatalf("globbing v1 traces: %v (%d files)", err, len(traces))
	}
	run(t, lagBin, "", append([]string{"convert", "-to", "v2", "-out", v2Dir}, traces...)...)
	for _, p := range traces {
		converted := filepath.Join(v2Dir, filepath.Base(p))
		magic := make([]byte, 5)
		f, err := os.Open(converted)
		if err != nil {
			t.Fatalf("converted trace missing: %v", err)
		}
		if _, err := f.Read(magic); err != nil || string(magic) != "LILA\x02" {
			t.Errorf("%s: not a v2 trace (magic %q, err %v)", converted, magic, err)
		}
		f.Close()
	}

	// Analyze the converted study.
	outB := t.TempDir()
	stdoutB := run(t, repBin, "", "-traces", v2Dir, "-jobs", "1", "-out", outB)

	// Stdout must match up to the run-specific suffixes (elapsed time,
	// output directory).
	normalize := func(out string) string {
		lines := strings.Split(out, "\n")
		for i, ln := range lines {
			if strings.HasPrefix(ln, "analyzed ") {
				if cut := strings.LastIndex(ln, " in "); cut >= 0 {
					lines[i] = ln[:cut]
				}
			}
			if strings.HasPrefix(ln, "wrote ") {
				if cut := strings.LastIndex(ln, " to "); cut >= 0 {
					lines[i] = ln[:cut]
				}
			}
		}
		return strings.Join(lines, "\n")
	}
	if a, b := normalize(stdoutA), normalize(stdoutB); a != b {
		t.Errorf("v2 study stdout differs from v1 baseline:\n--- v1 ---\n%s\n--- v2 ---\n%s", a, b)
	}

	// Every artifact except runmeta.json must be byte-identical.
	entries, err := os.ReadDir(outA)
	if err != nil {
		t.Fatal(err)
	}
	compared := 0
	for _, e := range entries {
		if e.IsDir() || e.Name() == "runmeta.json" {
			continue
		}
		wantBytes, err := os.ReadFile(filepath.Join(outA, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		gotBytes, err := os.ReadFile(filepath.Join(outB, e.Name()))
		if err != nil {
			t.Errorf("v2 run missing artifact %s: %v", e.Name(), err)
			continue
		}
		if !bytes.Equal(wantBytes, gotBytes) {
			t.Errorf("artifact %s differs between v1 and v2 studies", e.Name())
		}
		compared++
	}
	if compared < 3 { // at least the SVGs, experiments.md, and report.html
		t.Errorf("compared only %d artifacts, expected the full figure set", compared)
	}

	// runmeta.json: equivalent after dropping the volatile fields.
	loadMeta := func(dir string) map[string]any {
		t.Helper()
		data, err := os.ReadFile(filepath.Join(dir, "runmeta.json"))
		if err != nil {
			t.Fatalf("runmeta.json: %v", err)
		}
		var m map[string]any
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatalf("runmeta.json: %v", err)
		}
		return m
	}
	metaA, metaB := loadMeta(outA), loadMeta(outB)
	for _, volatile := range []string{"started", "wall_clock", "phases", "metrics", "flags"} {
		delete(metaA, volatile)
		delete(metaB, volatile)
	}
	stableA, _ := json.Marshal(metaA)
	stableB, _ := json.Marshal(metaB)
	if !bytes.Equal(stableA, stableB) {
		t.Errorf("runmeta.json stable fields differ:\n%s\nvs\n%s", stableA, stableB)
	}

	// Round trip the binary leg back to v1 and check record-level
	// identity via stats output.
	backDir := t.TempDir()
	v2Trace := filepath.Join(v2Dir, "CrosswordSage_0.lila")
	run(t, lagBin, "", "convert", "-to", "binary", "-out", backDir, v2Trace)
	statsV1 := run(t, lagBin, "", "stats", filepath.Join(v1Dir, "CrosswordSage_0.lila"))
	statsBack := run(t, lagBin, "", "stats", filepath.Join(backDir, "CrosswordSage_0.lila"))
	if statsV1 != statsBack {
		t.Errorf("stats after v1->v2->binary round trip differ:\n--- v1 ---\n%s\n--- round trip ---\n%s",
			statsV1, statsBack)
	}
}

// TestCLISelfProfile is the self-profiling round trip golden: run the
// tools with -self-profile, then feed each emitted LiLa v2 self-trace
// back through `lagalyzer report` — LagAlyzer analyzing its own run.
// The loop must close: nonzero episodes, pattern tables, and rendered
// SVG sketches, all with exit code 0.
func TestCLISelfProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	simBin, lagBin, repBin := tool(t, "lilasim"), tool(t, "lagalyzer"), tool(t, "lagreport")
	dir := t.TempDir()

	// lilasim with -self-profile: the generated trace must be
	// byte-identical to an unprofiled run (self-profiling must never
	// perturb output), and the self-trace must be a v2 file.
	plain := filepath.Join(dir, "plain.lila")
	profiled := filepath.Join(dir, "profiled.lila")
	simSelf := filepath.Join(dir, "lilasim-self.lila")
	run(t, simBin, "", "-app", "CrosswordSage", "-seconds", "15", "-seed", "3", "-format", "binary", "-o", plain)
	out := run(t, simBin, "", "-app", "CrosswordSage", "-seconds", "15", "-seed", "3", "-format", "binary",
		"-o", profiled, "-self-profile", simSelf)
	if !strings.Contains(out, "wrote self-trace") {
		t.Errorf("lilasim output missing self-trace line:\n%s", out)
	}
	a, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(profiled)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("-self-profile perturbed lilasim's generated trace")
	}

	// lagreport with -self-profile on a one-app study.
	repSelf := filepath.Join(dir, "lagreport-self.lila")
	outDir := filepath.Join(dir, "figs")
	out = run(t, repBin, "", "-sessions", "1", "-seconds", "20", "-only", "table3",
		"-out", outDir, "-self-profile", repSelf)
	if !strings.Contains(out, "analyze with: lagalyzer report") {
		t.Errorf("lagreport output missing the self-trace hint:\n%s", out)
	}
	meta, err := os.ReadFile(filepath.Join(outDir, "runmeta.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(meta), `"self_trace"`) {
		t.Error("runmeta.json missing the self_trace field")
	}

	// Close the loop: analyze both self-traces with `lagalyzer report`,
	// itself running under -self-profile (profiling the profiler's
	// profiler), and render sketches.
	sketchDir := filepath.Join(dir, "sketches")
	metaSelf := filepath.Join(dir, "report-self.lila")
	out = run(t, lagBin, "", "-self-profile", metaSelf, "report", "-out", sketchDir, repSelf, simSelf)
	for _, want := range []string{"lagreport", "lilasim", "Table III", "Figure 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("lagalyzer report output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "analyzed 0 traced episodes") {
		t.Errorf("self-trace analysis found no episodes:\n%s", out)
	}
	svgs, err := filepath.Glob(filepath.Join(sketchDir, "*.svg"))
	if err != nil || len(svgs) == 0 {
		t.Errorf("report -out rendered no sketches: %v", err)
	}
	for _, p := range svgs {
		data, err := os.ReadFile(p)
		if err != nil || !strings.Contains(string(data), "<svg") {
			t.Errorf("%s: not an SVG (%v)", p, err)
		}
	}

	// And once more around the loop: the meta self-trace analyzes too.
	out = run(t, lagBin, "", "report", metaSelf)
	if !strings.Contains(out, "lagalyzer-report") || strings.Contains(out, "analyzed 0 traced episodes") {
		t.Errorf("meta self-trace analysis:\n%s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	// Unknown app fails with a useful message and nonzero status.
	cmd := exec.Command(tool(t, "lilasim"), "-app", "Photoshop")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatal("unknown app accepted")
	}
	if !strings.Contains(string(out), "unknown application") {
		t.Errorf("error output: %s", out)
	}
	// lagalyzer with a missing file.
	cmd = exec.Command(tool(t, "lagalyzer"), "stats", "/nonexistent/trace.lila")
	if err := cmd.Run(); err == nil {
		t.Fatal("missing trace accepted")
	}
	// lagalyzer with an unknown subcommand exits 2.
	cmd = exec.Command(tool(t, "lagalyzer"), "frobnicate")
	if err := cmd.Run(); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
}

// TestExamples runs every example program end to end; each must exit
// zero and print its headline output.
func TestExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("runs example binaries")
	}
	cases := []struct {
		dir  string
		want string
	}{
		{"quickstart", "patterns:"},
		{"animation", "achieved frame rate"},
		{"backgroundload", "avg runnable threads"},
		{"gcpressure", "perceptible lag"},
		{"customanalysis", "paint nesting depth"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(t.TempDir(), tc.dir)
			build := exec.Command("go", "build", "-o", bin, "./examples/"+tc.dir)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			cmd := exec.Command(bin)
			cmd.Dir = t.TempDir() // quickstart writes an SVG into its cwd
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("run: %v\n%s", err, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Errorf("output missing %q:\n%s", tc.want, out)
			}
		})
	}
}
