package lagalyzer

import (
	"lagalyzer/internal/diff"
	"lagalyzer/internal/sim"
	"lagalyzer/internal/stats"
)

// Distribution types, re-exported so callers can define their own
// application profiles (behavior durations, think times, GC pauses)
// against the public API alone.
type (
	// Dist is a one-dimensional probability distribution.
	Dist = stats.Dist
	// IntDist is a distribution over non-negative integers.
	IntDist = stats.IntDist

	// ConstDist always returns V.
	ConstDist = stats.Const
	// UniformDist is uniform on [Lo, Hi).
	UniformDist = stats.Uniform
	// ExpDist is exponential with the given mean.
	ExpDist = stats.Exp
	// LogNormalDist is log-normal with the given median and sigma.
	LogNormalDist = stats.LogNormal
	// ParetoDist is a power law with scale Xm and shape Alpha.
	ParetoDist = stats.Pareto
	// ClampedDist clamps another distribution to [Lo, Hi].
	ClampedDist = stats.Clamped
	// MixtureDist draws from weighted component distributions.
	MixtureDist = stats.Mixture

	// ConstIntDist always returns V.
	ConstIntDist = stats.ConstInt
	// UniformIntDist is uniform on [Lo, Hi] inclusive.
	UniformIntDist = stats.UniformInt
	// GeometricIntDist continues past Lo with probability P.
	GeometricIntDist = stats.Geometric
)

// NewMixture builds a MixtureDist; it panics on mismatched or empty
// component lists.
func NewMixture(weights []float64, comps []Dist) *MixtureDist {
	return stats.NewMixture(weights, comps)
}

// Profile building blocks, re-exported for custom applications.
type (
	// Behavior is one kind of episode: a duration distribution plus
	// the structural template below the dispatch interval.
	Behavior = sim.Behavior
	// Node is the template of one interval in an episode's tree.
	Node = sim.Node
	// StateMix gives the blocked/waiting/sleeping fractions of a
	// node's self time.
	StateMix = sim.StateMix
	// Timer is an EDT event source with its own cadence.
	Timer = sim.Timer
	// HeapConfig parameterizes the stop-the-world collector model.
	HeapConfig = sim.HeapConfig
	// BackgroundThread models a non-EDT thread's visible behaviour.
	BackgroundThread = sim.BackgroundThread
)

// Pattern-set comparison (regression detection between two runs).
type (
	// DiffOptions tune pattern-set comparison.
	DiffOptions = diff.Options
	// DiffResult is a full comparison of two pattern sets.
	DiffResult = diff.Result
	// DiffEntry is one pattern's comparison.
	DiffEntry = diff.Entry
	// DiffVerdict classifies one pattern's movement.
	DiffVerdict = diff.Verdict
)

// Diff verdicts.
const (
	DiffUnchanged   = diff.Unchanged
	DiffImproved    = diff.Improved
	DiffRegressed   = diff.Regressed
	DiffAppeared    = diff.Appeared
	DiffDisappeared = diff.Disappeared
)

// ComparePatterns aligns two pattern sets by structural fingerprint
// and reports regressions, improvements, and appearing/disappearing
// patterns. Both sets must be classified with identical options.
func ComparePatterns(oldSet, newSet *PatternSet, opt DiffOptions) (*DiffResult, error) {
	return diff.Compare(oldSet, newSet, opt)
}
