// Command lilasim generates synthetic LiLa latency traces by
// simulating interactive sessions of the study's 14 applications. It
// stands in for the LiLa profiler + real-application + human-driver
// combination of the paper (see DESIGN.md).
//
// Usage:
//
//	lilasim -list
//	lilasim -app Jmol -seconds 60 -seed 7 -format binary -o jmol.lila
//	lilasim -app Jmol -format v2 -o jmol.lila            (block-indexed v2)
//	lilasim -app Jmol -format v2 -compress -o jmol.lila  (DEFLATE-compressed blocks)
//	lilasim -app GanttProject -session 2 > gantt.lila.txt
//
// Exit codes: 0 success, 1 total failure, 2 usage error (the shared
// convention across lagalyzer, lagreport, and lilasim; the generator
// has no partial-success mode, so it never exits 3).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"lagalyzer/internal/apps"
	"lagalyzer/internal/lila"
	"lagalyzer/internal/obs"
	"lagalyzer/internal/obs/selftrace"
	"lagalyzer/internal/sim"
)

func main() {
	var (
		list        = flag.Bool("list", false, "list available application profiles and exit")
		app         = flag.String("app", "", "application profile to simulate (see -list)")
		session     = flag.Int("session", 0, "session id (varies the random stream)")
		seed        = flag.Uint64("seed", 42, "base random seed")
		seconds     = flag.Float64("seconds", 0, "session length override in seconds (0 = profile default)")
		format      = flag.String("format", "text", "trace encoding: text, binary, or v2")
		compress    = flag.Bool("compress", false, "DEFLATE-compress v2 blocks (v2 format only)")
		out         = flag.String("o", "", "output file (default stdout)")
		short       = flag.Bool("materialize-short", false, "emit sub-3ms episodes as records instead of a count")
		selfProfile = flag.String("self-profile", "", "write a LiLa v2 trace of this run's own generate/encode spans to this file")
	)
	profiler := obs.AddProfileFlags(flag.CommandLine)
	flag.Parse()

	stopProfiles, err := profiler.Start()
	if err != nil {
		fail(err)
	}
	defer stopProfiles()

	if *list {
		fmt.Println("Available application profiles (Table II of the paper):")
		for _, p := range apps.Catalog() {
			fmt.Printf("  %-14s v%-9s %6d classes  %s\n", p.Name, p.Version, p.Classes, p.Description)
		}
		return
	}
	if *app == "" {
		fmt.Fprintln(os.Stderr, "lilasim: -app is required (use -list to see profiles)")
		os.Exit(2)
	}
	profile, err := apps.ByName(*app)
	if err != nil {
		fail(err)
	}
	f, err := lila.ParseFormat(*format)
	if err != nil {
		fail(err)
	}
	wo := lila.WriteOptions{Format: f}
	if *compress {
		wo.Compression = lila.CompressionFlate
	}

	// With -self-profile the generate and encode phases are recorded as
	// spans and flushed as a LiLa v2 trace of lilasim's own run. The
	// trace never influences the generated records (spans are written
	// after the output file is complete), so output stays seed-exact.
	var selfTr *obs.Trace
	ctx := context.Background()
	if *selfProfile != "" {
		selfTr = obs.NewTrace()
		ctx = obs.WithTrace(ctx, selfTr)
	}

	_, endGen := obs.PhaseSpan(ctx, "generate")
	recs, header, err := sim.Records(sim.Config{
		Profile:          profile,
		SessionID:        *session,
		Seed:             *seed,
		SessionSeconds:   *seconds,
		MaterializeShort: *short,
	})
	endGen()
	if err != nil {
		fail(err)
	}

	// Stream to a temp file in the target directory and rename on
	// success, so a killed lilasim never leaves a truncated trace under
	// the final name (tools downstream treat presence as completeness).
	w := os.Stdout
	var tmp *os.File
	if *out != "" {
		dir := filepath.Dir(*out)
		tmp, err = os.CreateTemp(dir, "."+filepath.Base(*out)+".tmp-*")
		if err != nil {
			fail(err)
		}
		defer os.Remove(tmp.Name()) // no-op after the rename
		w = tmp
	}
	_, endEnc := obs.PhaseSpan(ctx, "encode")
	lw, err := lila.NewWriterOptions(w, header, wo)
	if err != nil {
		fail(err)
	}
	for _, rec := range recs {
		if err := lw.WriteRecord(rec); err != nil {
			fail(err)
		}
	}
	if err := lw.Close(); err != nil {
		fail(err)
	}
	endEnc()
	if tmp != nil {
		if err := tmp.Sync(); err != nil {
			fail(err)
		}
		if err := tmp.Close(); err != nil {
			fail(err)
		}
		if err := os.Chmod(tmp.Name(), 0o644); err != nil {
			fail(err)
		}
		if err := os.Rename(tmp.Name(), *out); err != nil {
			fail(err)
		}
	}
	if *selfProfile != "" {
		if err := selftrace.WriteFile(*selfProfile, selfTr, selftrace.Options{App: "lilasim", SessionID: *session}); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "lilasim: wrote self-trace to %s\n", *selfProfile)
	}
	fmt.Fprintf(os.Stderr, "lilasim: wrote %d records (%s/%d, %s format)\n", len(recs), profile.Name, *session, f)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "lilasim:", err)
	os.Exit(1)
}
