// Command lagalyzer analyzes LiLa latency traces: it reconstructs
// sessions, mines episode patterns, characterizes perceptible lag, and
// renders episode sketches. It is the command-line face of the
// LagAlyzer core.
//
// Usage:
//
//	lagalyzer stats    <trace>...          per-session overview + characterization
//	lagalyzer report   [-out dir] <trace>...  full study tables + SVG figures
//	lagalyzer patterns [-n 30] <trace>...  pattern table (the paper's §II-E browser table)
//	lagalyzer sketch   [-episode N] [-svg out.svg] <trace>
//	lagalyzer browse   <trace>...          interactive pattern browser
//	lagalyzer convert  [-to v2] <trace>... re-encode traces between formats
//
// Traces in any encoding (v1 text, v1 binary, block-indexed v2) are
// accepted, sniffed by their first bytes. Generate synthetic traces
// with lilasim; re-encode recorded ones with convert — conversion is
// record-preserving, so analysis output is identical across formats.
//
// Global profiling flags (-cpuprofile, -memprofile, -trace) go before
// the subcommand: lagalyzer -cpuprofile cpu.out stats trace.lila
//
// The global -salvage flag tolerates damaged traces: the decoders
// resynchronize past wire damage, sessions are rebuilt leniently, and
// files that still cannot contribute anything are skipped with a note
// on stderr instead of aborting the run.
//
// Exit codes: 0 success, 1 total failure, 2 usage error, 3 partial
// success (-salvage skipped at least one input file entirely).
package main

import (
	"bufio"
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"lagalyzer/internal/analysis"
	"lagalyzer/internal/browser"
	"lagalyzer/internal/diff"
	"lagalyzer/internal/lila"
	"lagalyzer/internal/obs"
	"lagalyzer/internal/obs/selftrace"
	"lagalyzer/internal/patterns"
	"lagalyzer/internal/report"
	"lagalyzer/internal/stream"
	"lagalyzer/internal/trace"
	"lagalyzer/internal/treebuild"
	"lagalyzer/internal/viz"
)

// salvageMode mirrors the global -salvage flag; lostInputs counts the
// files that contributed nothing even under salvage (→ exit 3).
// runCtx is canceled by SIGINT/SIGTERM: the per-file loops stop at the
// next boundary, completed work is printed, and the run exits with the
// partial-success code instead of dying mid-write.
var (
	salvageMode bool
	loadJobs    int
	lostInputs  int
	runCtx      context.Context = context.Background()
)

func main() {
	os.Exit(run())
}

// run is main's body with a return code, so deferred cleanups (the
// profile writers) execute before the process exits.
func run() int {
	salvage := flag.Bool("salvage", false, "tolerate damaged traces: resynchronize past wire damage, rebuild leniently, skip unrecoverable files")
	jobs := flag.Int("jobs", 0, "trace files decoded concurrently (0 = one per CPU, 1 = sequential)")
	selfProfile := flag.String("self-profile", "", "write a LiLa v2 trace of this run's own pipeline spans to this file")
	profiler := obs.AddProfileFlags(flag.CommandLine)
	flag.Usage = usage
	flag.Parse()
	salvageMode = *salvage
	loadJobs = *jobs
	if flag.NArg() < 1 {
		usage()
	}
	stopProfiles, err := profiler.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lagalyzer:", err)
		return 1
	}
	defer stopProfiles()

	var stopSignals context.CancelFunc
	runCtx, stopSignals = signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	cmd, args := flag.Arg(0), flag.Args()[1:]

	// Self-profiling records the run's own spans and flushes them as a
	// LiLa v2 trace after the subcommand finishes — the tool's output
	// is already complete by then, so profiling cannot perturb it.
	var selfTr *obs.Trace
	if *selfProfile != "" {
		selfTr = obs.NewTrace()
		runCtx = obs.WithTrace(runCtx, selfTr)
		var endRoot func()
		runCtx, endRoot = obs.Span(runCtx, cmd)
		defer func() {
			endRoot()
			if err := selftrace.WriteFile(*selfProfile, selfTr, selftrace.Options{App: "lagalyzer-" + cmd}); err != nil {
				fmt.Fprintln(os.Stderr, "lagalyzer: self-profile:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "lagalyzer: wrote self-trace to %s\n", *selfProfile)
		}()
	}

	switch cmd {
	case "stats":
		err = runStats(args)
	case "report":
		err = runReport(args)
	case "patterns":
		err = runPatterns(args)
	case "sketch":
		err = runSketch(args)
	case "timeline":
		err = runTimeline(args)
	case "stream":
		err = runStream(args)
	case "browse":
		err = runBrowse(args)
	case "diff":
		err = runDiff(args)
	case "convert":
		err = runConvert(args)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "lagalyzer: unknown command %q\n", cmd)
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lagalyzer:", err)
		return 1
	}
	if lostInputs > 0 {
		fmt.Fprintf(os.Stderr, "lagalyzer: partial results — %d input file(s) skipped; exiting 3\n", lostInputs)
		return 3
	}
	return 0
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  lagalyzer stats    <trace>...            full characterization + threshold sweep
  lagalyzer report   [-out dir] <trace>... full study tables + figures over the given traces
  lagalyzer patterns [-n rows] [-sort count|total|max|avg] [-perceptible] <trace>...
  lagalyzer sketch   [-episode N] [-svg file] <trace>
  lagalyzer timeline [-svg file] <trace>   whole-session trace timeline
  lagalyzer stream   [-follow [-poll d] [-follow-idle d]] <trace>...
                                           single-pass statistics (O(1) memory);
                                           -follow tails one growing trace live
  lagalyzer browse   <trace>...            interactive pattern browser
  lagalyzer diff     [-n rows] <old> <new> compare two runs' patterns
  lagalyzer convert  [-to text|binary|v2] [-compress] [-out dir] <trace>...
                                           re-encode traces (record-preserving);
                                           -compress DEFLATEs each v2 block

global flags (before the subcommand):
  -salvage           tolerate damaged traces (skip unrecoverable files; exit 3 if any)
  -jobs n            decode workers (0 = one per CPU, 1 = sequential); workers beyond
                     the file count decode v2 blocks within a file concurrently
  -self-profile f    write a LiLa v2 trace of this run's own pipeline spans to f
  -cpuprofile file   write a CPU profile
  -memprofile file   write a heap profile at exit
  -trace file        write a runtime execution trace

exit codes: 0 success, 1 total failure, 2 usage, 3 partial success`)
	os.Exit(2)
}

func loadSessions(paths []string) ([]*trace.Session, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("no trace files given")
	}
	jobs := loadJobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	// Workers beyond the file count are not wasted: they become the
	// intra-file share, decoding one v2 file's blocks concurrently —
	// a single huge trace with -jobs 4 uses all four workers.
	blockJobs := 1
	if jobs > len(paths) {
		blockJobs = jobs / len(paths)
		jobs = len(paths)
	}

	type result struct {
		s   *trace.Session
		err error
	}
	results := make([]result, len(paths))
	if jobs <= 1 {
		for i, path := range paths {
			// A signal stops ingest at the next file boundary; the
			// files not reached stay undecoded and are counted below.
			if runCtx.Err() != nil {
				break
			}
			_, endLoad := obs.Span(runCtx, "load")
			s, err := loadSession(path, blockJobs)
			endLoad()
			if err != nil && !salvageMode {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			results[i] = result{s, err}
		}
	} else {
		// Decode concurrently; results land in argument-order slots so
		// downstream output is identical to a sequential run.
		var wg sync.WaitGroup
		var next atomic.Int64
		for w := 0; w < jobs; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				wctx := obs.WithWorker(runCtx, w)
				for {
					i := int(next.Add(1)) - 1
					if i >= len(paths) || runCtx.Err() != nil {
						return
					}
					_, endLoad := obs.Span(wctx, "load")
					s, err := loadSession(paths[i], blockJobs)
					endLoad()
					results[i] = result{s, err}
				}
			}(w)
		}
		wg.Wait()
	}

	var sessions []*trace.Session
	interrupted := 0
	for i, r := range results {
		if r.s == nil && r.err == nil {
			// Never decoded: the signal arrived before this file's
			// pickup. It counts as a lost input, so the run finishes
			// its output over what loaded and exits 3.
			interrupted++
			continue
		}
		if r.err != nil {
			if salvageMode {
				fmt.Fprintf(os.Stderr, "lagalyzer: %s: skipped: %v\n", paths[i], r.err)
				lostInputs++
				continue
			}
			// First failure in argument order, matching what a
			// sequential fail-fast scan reports.
			return nil, fmt.Errorf("%s: %w", paths[i], r.err)
		}
		sessions = append(sessions, r.s)
	}
	if interrupted > 0 {
		fmt.Fprintf(os.Stderr, "lagalyzer: interrupted — skipping %d remaining input(s)\n", interrupted)
		lostInputs += interrupted
	}
	if len(sessions) == 0 {
		return nil, fmt.Errorf("no loadable trace sessions (%d file(s) skipped)", lostInputs)
	}
	return sessions, nil
}

// loadSession ingests one trace file, strictly by default; in salvage
// mode it decodes leniently and reports any damage worked around on
// stderr. v2 traces take the mmap + block-index fast path, with up to
// blockJobs workers decoding one file's blocks concurrently.
func loadSession(path string, blockJobs int) (*trace.Session, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [5]byte
	if _, err := f.ReadAt(magic[:], 0); err == nil &&
		string(magic[:4]) == "LILA" && magic[4] == lila.V2FormatVersion {
		return loadSessionV2(f, path, blockJobs)
	}
	if !salvageMode {
		return treebuild.ReadSession(f)
	}
	s, sh, err := treebuild.ReadSessionOptions(f,
		lila.ReaderOptions{Salvage: true}, treebuild.Options{Lenient: true})
	if err != nil {
		return nil, err
	}
	if sh != nil && sh.Degraded() {
		if sh.Salvage.Damaged() {
			fmt.Fprintf(os.Stderr, "lagalyzer: %s: salvage: %s\n", path, sh.Salvage)
		}
		if sh.Diag.Degraded() {
			d := sh.Diag
			msg := fmt.Sprintf("skipped %d records, dropped %d open intervals, %d episodes",
				d.SkippedRecords, d.DroppedOpenIntervals, d.DroppedEpisodes)
			if d.SynthesizedEnd {
				msg += ", synthesized end"
			}
			fmt.Fprintf(os.Stderr, "lagalyzer: %s: rebuild: %s\n", path, msg)
		}
	}
	return s, nil
}

// loadSessionV2 decodes a v2 trace via its footer index: the file is
// mapped, blocks (compressed or raw) fan out to blockJobs workers, and
// the merged record stream rebuilds the session. Salvage notes print
// exactly like the streaming path's.
func loadSessionV2(f *os.File, path string, blockJobs int) (*trace.Session, error) {
	v, err := lila.OpenV2File(f, lila.Limits{})
	if err != nil {
		return nil, err
	}
	defer v.Close()
	recs, rep, err := v.RecordsJobs(nil, salvageMode, blockJobs)
	if err != nil {
		return nil, err
	}
	s, diag, err := treebuild.BuildRecordsOptions(v.Header(), recs, treebuild.Options{Lenient: salvageMode})
	if err != nil {
		return nil, err
	}
	if rep.Damaged() {
		fmt.Fprintf(os.Stderr, "lagalyzer: %s: salvage: %s\n", path, rep)
	}
	if diag.Degraded() {
		msg := fmt.Sprintf("skipped %d records, dropped %d open intervals, %d episodes",
			diag.SkippedRecords, diag.DroppedOpenIntervals, diag.DroppedEpisodes)
		if diag.SynthesizedEnd {
			msg += ", synthesized end"
		}
		fmt.Fprintf(os.Stderr, "lagalyzer: %s: rebuild: %s\n", path, msg)
	}
	return s, nil
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	threshold := fs.Duration("threshold", 100e6, "perceptibility threshold")
	fs.Parse(args)
	sessions, err := loadSessions(fs.Args())
	if err != nil {
		return err
	}
	th := trace.Dur(*threshold)

	for _, s := range sessions {
		long := len(s.PerceptibleEpisodes(th))
		fmt.Printf("%s/%d: E2E %v, in-episode %.1f%%, episodes <%v: %d, traced: %d, >=%v: %d, GCs: %d, samples: %d\n",
			s.App, s.ID, s.E2E(), s.InEpisodeFrac()*100, s.FilterThreshold, s.ShortCount,
			len(s.Episodes), th, long, len(s.GCs), len(s.Ticks))
	}

	opts := analysis.TriggerOptions{}
	trigAll := analysis.TriggerAnalysis(sessions, th, false, opts)
	trigLong := analysis.TriggerAnalysis(sessions, th, true, opts)
	fmt.Printf("\ntriggers (all):          input %.1f%%  output %.1f%%  async %.1f%%  unspecified %.1f%%\n",
		trigAll.Frac(analysis.TriggerInput)*100, trigAll.Frac(analysis.TriggerOutput)*100,
		trigAll.Frac(analysis.TriggerAsync)*100, trigAll.Frac(analysis.TriggerUnspecified)*100)
	fmt.Printf("triggers (perceptible):  input %.1f%%  output %.1f%%  async %.1f%%  unspecified %.1f%%\n",
		trigLong.Frac(analysis.TriggerInput)*100, trigLong.Frac(analysis.TriggerOutput)*100,
		trigLong.Frac(analysis.TriggerAsync)*100, trigLong.Frac(analysis.TriggerUnspecified)*100)

	locAll := analysis.LocationAnalysis(sessions, th, false, nil)
	locLong := analysis.LocationAnalysis(sessions, th, true, nil)
	fmt.Printf("location (all):          library %.1f%%  app %.1f%%  |  gc %.1f%%  native %.1f%%\n",
		locAll.Library*100, locAll.App*100, locAll.GC*100, locAll.Native*100)
	fmt.Printf("location (perceptible):  library %.1f%%  app %.1f%%  |  gc %.1f%%  native %.1f%%\n",
		locLong.Library*100, locLong.App*100, locLong.GC*100, locLong.Native*100)

	concAll, _ := analysis.Concurrency(sessions, th, false)
	concLong, _ := analysis.Concurrency(sessions, th, true)
	fmt.Printf("concurrency:             all %.2f  perceptible %.2f runnable threads\n", concAll, concLong)

	cAll := analysis.CauseAnalysis(sessions, th, false)
	cLong := analysis.CauseAnalysis(sessions, th, true)
	fmt.Printf("causes (all):            blocked %.1f%%  wait %.1f%%  sleep %.1f%%  runnable %.1f%%\n",
		cAll.Blocked*100, cAll.Waiting*100, cAll.Sleeping*100, cAll.Runnable*100)
	fmt.Printf("causes (perceptible):    blocked %.1f%%  wait %.1f%%  sleep %.1f%%  runnable %.1f%%\n",
		cLong.Blocked*100, cLong.Waiting*100, cLong.Sleeping*100, cLong.Runnable*100)

	// The HCI literature disagrees on where "perceptible" begins;
	// show the sensitivity.
	fmt.Println("\nthreshold sensitivity (Shneiderman 100ms; Dabrowski/Munson 150/195ms; MacKenzie/Ware 225ms):")
	for _, p := range analysis.ThresholdSweep(sessions, nil) {
		fmt.Printf("  >=%-8v %6d episodes (%5.2f%%)  %6.1f per minute of in-episode time\n",
			p.Threshold, p.Episodes, p.Frac*100, p.PerMin)
	}
	return nil
}

// runReport runs the full study analysis — tables, figure data, and
// optionally SVG figures — over already-recorded traces, grouping the
// sessions into one suite per application. It is how a self-trace is
// fed back through the complete pipeline ("profile the profiler"), but
// it works on any trace set.
func runReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	outDir := fs.String("out", "", "directory for SVG figures (empty = text only)")
	fs.Parse(args)
	sessions, err := loadSessions(fs.Args())
	if err != nil {
		return err
	}
	// Group into suites by app, preserving first-seen order so output
	// follows the argument order.
	byApp := map[string]*trace.Suite{}
	var suites []*trace.Suite
	for _, s := range sessions {
		su, ok := byApp[s.App]
		if !ok {
			su = &trace.Suite{App: s.App}
			byApp[s.App] = su
			suites = append(suites, su)
		}
		su.Sessions = append(su.Sessions, s)
	}
	res := report.AnalyzeSuitesContext(runCtx, suites, 0, nil)
	fmt.Print(report.FormatAll(res))
	fmt.Printf("analyzed %d traced episodes across %d application(s)\n", res.TotalEpisodes(), len(res.Apps))
	if *outDir == "" {
		return nil
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	figs := report.Figures(res)
	for name, svg := range figs {
		if err := obs.WriteFileAtomic(filepath.Join(*outDir, name), []byte(svg), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "lagalyzer: wrote %d figures to %s\n", len(figs), *outDir)
	return nil
}

func runTimeline(args []string) error {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	svgOut := fs.String("svg", "", "write SVG to this file (default: text timeline to stdout)")
	columns := fs.Int("columns", 100, "text timeline width")
	fs.Parse(args)
	sessions, err := loadSessions(fs.Args())
	if err != nil {
		return err
	}
	for _, s := range sessions {
		if *svgOut != "" {
			if err := obs.WriteFileAtomic(*svgOut, []byte(viz.Timeline(s, viz.TimelineOptions{})), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *svgOut)
			continue
		}
		fmt.Print(viz.TimelineText(s, *columns))
	}
	return nil
}

func runStream(args []string) error {
	fs := flag.NewFlagSet("stream", flag.ExitOnError)
	follow := fs.Bool("follow", false, "tail one growing trace file: poll for appended records, resume at the last complete record, stop at the end record, -follow-idle, or SIGINT")
	poll := fs.Duration("poll", 500*time.Millisecond, "poll interval in -follow mode")
	followIdle := fs.Duration("follow-idle", 0, "in -follow mode, stop after this long without new bytes (0 = wait for the end record or SIGINT)")
	fs.Parse(args)
	args = fs.Args()
	if *follow {
		if len(args) != 1 {
			return fmt.Errorf("stream -follow takes exactly one trace file")
		}
		return followOne(args[0], *poll, *followIdle)
	}
	for i, path := range args {
		if runCtx.Err() != nil {
			fmt.Fprintf(os.Stderr, "lagalyzer: interrupted — skipping %d remaining input(s)\n", len(args)-i)
			lostInputs += len(args) - i
			break
		}
		st, err := streamOne(path)
		if err != nil {
			if salvageMode {
				fmt.Fprintf(os.Stderr, "lagalyzer: %s: skipped: %v\n", path, err)
				lostInputs++
				continue
			}
			return fmt.Errorf("%s: %w", path, err)
		}
		printStreamStats(st)
	}
	if len(args) == 0 {
		return fmt.Errorf("no trace files given")
	}
	return nil
}

func printStreamStats(st *stream.Stats) {
	fmt.Printf("%s/%d: E2E %v, %d episodes (+%d short), %d perceptible, mean %.1fms max %.1fms\n",
		st.App, st.SessionID, st.E2E, st.Episodes, st.ShortCount, st.Perceptible,
		st.Durations.Mean(), st.Durations.Max)
	fmt.Printf("  triggers: input %.0f%% output %.0f%% async %.0f%% unspecified %.0f%%  |  gc %.1f%% native %.1f%%  |  %.2f runnable threads\n",
		st.Triggers.Frac(analysis.TriggerInput)*100, st.Triggers.Frac(analysis.TriggerOutput)*100,
		st.Triggers.Frac(analysis.TriggerAsync)*100, st.Triggers.Frac(analysis.TriggerUnspecified)*100,
		st.GCFrac()*100, st.NativeFrac()*100, st.Concurrency())
	fmt.Printf("  decoded %d records (%.2f MB) in %v — %.0f records/s, %.1f MB/s\n",
		st.Records, float64(st.Bytes)/1e6, st.Elapsed.Round(time.Millisecond),
		st.RecordsPerSec(), st.BytesPerSec()/1e6)
}

// followOne tails a growing trace file the way a live profiler writes
// one: decode what is there, then poll for appended bytes and resume
// exactly where the last complete record ended (a partial record at
// the tail simply stays buffered until the writer completes it).
// Stops at the trace's end record, after -follow-idle without growth,
// or on SIGINT — and prints the single-pass summary either way.
func followOne(path string, poll, idle time.Duration) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	start := time.Now()
	tr := &tailReader{f: f, poll: poll, idle: idle}
	cr := obs.NewCountingReader(tr, nil)
	lr, err := lila.NewReaderOptions(cr, lila.ReaderOptions{Salvage: salvageMode})
	if err != nil {
		return err
	}
	an := stream.NewAnalyzer(lr.Header(), 0)
	skipped, lastNote := 0, time.Now()
	for {
		rec, err := lr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			if !salvageMode {
				return err
			}
			fmt.Fprintf(os.Stderr, "lagalyzer: %s: stream ended: %v\n", path, err)
			break
		}
		if aerr := an.Add(rec); aerr != nil {
			if !salvageMode {
				return aerr
			}
			skipped++
		}
		if rec.Type == lila.RecEnd {
			break
		}
		if time.Since(lastNote) >= 5*time.Second {
			fmt.Fprintf(os.Stderr, "lagalyzer: following %s: %.2f MB, trace time %v\n",
				path, float64(cr.Bytes())/1e6, trace.Dur(an.Now()))
			lastNote = time.Now()
		}
	}
	st := an.Stats()
	st.Bytes = cr.Bytes()
	st.Elapsed = time.Since(start)
	if rep := lila.SalvageOf(lr); rep.Damaged() {
		fmt.Fprintf(os.Stderr, "lagalyzer: %s: salvage: %s\n", path, rep)
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "lagalyzer: %s: %d records rejected by the analyzer\n", path, skipped)
	}
	printStreamStats(st)
	return nil
}

// tailReader turns a regular file into a follow stream: an EOF from
// the file is not the end, just "no new bytes yet" — sleep one poll
// interval and retry. It gives up (a real EOF) when the idle budget
// runs out or the run is interrupted.
type tailReader struct {
	f    *os.File
	poll time.Duration
	idle time.Duration
}

func (t *tailReader) Read(p []byte) (int, error) {
	var waited time.Duration
	for {
		n, err := t.f.Read(p)
		if n > 0 || (err != nil && err != io.EOF) {
			return n, err
		}
		if runCtx.Err() != nil {
			return 0, io.EOF
		}
		if t.idle > 0 && waited >= t.idle {
			return 0, io.EOF
		}
		sleep := t.poll
		if sleep <= 0 {
			sleep = 500 * time.Millisecond
		}
		time.Sleep(sleep)
		waited += sleep
	}
}

// streamOne runs the single-pass analyzer over one trace file,
// leniently (salvage decoding, rejected records skipped) when
// -salvage is set.
func streamOne(path string) (*stream.Stats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if !salvageMode {
		return stream.AnalyzeStream(f, 0)
	}
	cr := obs.NewCountingReader(f, nil)
	lr, err := lila.NewReaderOptions(cr, lila.ReaderOptions{Salvage: true})
	if err != nil {
		return nil, err
	}
	st, skipped, err := stream.AnalyzeLenient(lr, 0)
	if err != nil {
		return nil, err
	}
	st.Bytes = cr.Bytes()
	if rep := lila.SalvageOf(lr); rep.Damaged() {
		fmt.Fprintf(os.Stderr, "lagalyzer: %s: salvage: %s\n", path, rep)
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "lagalyzer: %s: %d records rejected by the analyzer\n", path, skipped)
	}
	return st, nil
}

func runPatterns(args []string) error {
	fs := flag.NewFlagSet("patterns", flag.ExitOnError)
	rows := fs.Int("n", 30, "rows to show (0 = all)")
	sortKey := fs.String("sort", "count", "sort key: count, total, max, or avg")
	perceptibleOnly := fs.Bool("perceptible", false, "elide patterns without perceptible episodes")
	fs.Parse(args)
	sessions, err := loadSessions(fs.Args())
	if err != nil {
		return err
	}
	key, err := browser.ParseSortKey(*sortKey)
	if err != nil {
		return err
	}
	set := patterns.Classify(sessions, patterns.Options{})
	b := browser.New(set, 0)
	b.SetSort(key)
	b.SetPerceptibleOnly(*perceptibleOnly)
	fmt.Print(b.Table(*rows))
	fmt.Printf("unstructured episodes (not classified): %d\n", len(set.Unstructured))
	return nil
}

func runSketch(args []string) error {
	fs := flag.NewFlagSet("sketch", flag.ExitOnError)
	episode := fs.Int("episode", -1, "episode index (default: longest episode)")
	svgOut := fs.String("svg", "", "write SVG to this file (default: text sketch to stdout)")
	fs.Parse(args)
	sessions, err := loadSessions(fs.Args())
	if err != nil {
		return err
	}
	s := sessions[0]
	if len(s.Episodes) == 0 {
		return fmt.Errorf("session has no traced episodes")
	}
	var e *trace.Episode
	if *episode >= 0 {
		if *episode >= len(s.Episodes) {
			return fmt.Errorf("episode %d out of range (session has %d)", *episode, len(s.Episodes))
		}
		e = s.Episodes[*episode]
	} else {
		e = s.Episodes[0]
		for _, cand := range s.Episodes {
			if cand.Dur() > e.Dur() {
				e = cand
			}
		}
	}
	if *svgOut != "" {
		if err := obs.WriteFileAtomic(*svgOut, []byte(viz.Sketch(s, e, viz.SketchOptions{})), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (episode %d, %v)\n", *svgOut, e.Index, e.Dur())
		return nil
	}
	fmt.Print(viz.SketchText(s, e))
	return nil
}

func runDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	rows := fs.Int("n", 40, "entries to show (0 = all changed)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("diff needs exactly two traces (old, new)")
	}
	oldSessions, err := loadSessions(fs.Args()[:1])
	if err != nil {
		return err
	}
	newSessions, err := loadSessions(fs.Args()[1:])
	if err != nil {
		return err
	}
	oldSet := patterns.Classify(oldSessions, patterns.Options{})
	newSet := patterns.Classify(newSessions, patterns.Options{})
	res, err := diff.Compare(oldSet, newSet, diff.Options{})
	if err != nil {
		return err
	}
	fmt.Print(res.Format(*rows))
	return nil
}

// runConvert re-encodes traces between the LiLa formats. Conversion
// is record-preserving — the output carries exactly the record stream
// of the input — so every analysis produces identical output whichever
// encoding a study is stored in.
func runConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	to := fs.String("to", "v2", "output encoding: text, binary, or v2")
	compress := fs.Bool("compress", false, "DEFLATE-compress v2 blocks (only with -to v2)")
	outDir := fs.String("out", "", "output directory, keeping base names (default: alongside each input as <input>.<format>)")
	fs.Parse(args)
	format, err := lila.ParseFormat(*to)
	if err != nil {
		return err
	}
	wo := lila.WriteOptions{Format: format}
	if *compress {
		wo.Compression = lila.CompressionFlate
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no trace files given")
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	for i, path := range fs.Args() {
		if runCtx.Err() != nil {
			fmt.Fprintf(os.Stderr, "lagalyzer: interrupted — skipping %d remaining input(s)\n", fs.NArg()-i)
			lostInputs += fs.NArg() - i
			break
		}
		dst := path + "." + format.String()
		if *outDir != "" {
			dst = filepath.Join(*outDir, filepath.Base(path))
		}
		if err := convertOne(path, dst, wo); err != nil {
			if salvageMode {
				fmt.Fprintf(os.Stderr, "lagalyzer: %s: skipped: %v\n", path, err)
				lostInputs++
				continue
			}
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	return nil
}

// convertOne re-encodes one trace, writing the output atomically (a
// temp file renamed into place) so an interrupted convert never leaves
// a truncated trace under the final name.
func convertOne(path, dst string, wo lila.WriteOptions) error {
	if same, err := filepath.Abs(dst); err == nil {
		if orig, err := filepath.Abs(path); err == nil && same == orig {
			return fmt.Errorf("output would overwrite the input")
		}
	}
	in, err := os.Open(path)
	if err != nil {
		return err
	}
	defer in.Close()
	r, err := lila.NewReaderOptions(in, lila.ReaderOptions{Salvage: salvageMode})
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	w, err := lila.NewWriterOptions(&buf, r.Header(), wo)
	if err != nil {
		return err
	}
	records := 0
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := w.WriteRecord(rec); err != nil {
			return err
		}
		records++
	}
	if err := w.Close(); err != nil {
		return err
	}
	if rep := lila.SalvageOf(r); rep.Damaged() {
		fmt.Fprintf(os.Stderr, "lagalyzer: %s: salvage: %s\n", path, rep)
	}
	if err := obs.WriteFileAtomic(dst, buf.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "lagalyzer: converted %s -> %s (%d records, %d bytes)\n",
		path, dst, records, buf.Len())
	return nil
}

func runBrowse(args []string) error {
	sessions, err := loadSessions(args)
	if err != nil {
		return err
	}
	set := patterns.Classify(sessions, patterns.Options{})
	b := browser.New(set, 0)
	fmt.Print(b.Table(20))
	fmt.Println(`commands: list [n] | sort count|total|max|avg | filter on|off | sel <i> | eps | next | prev | sketch | svg <file> | quit`)

	in := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !in.Scan() {
			fmt.Println()
			return in.Err()
		}
		fields := strings.Fields(in.Text())
		if len(fields) == 0 {
			continue
		}
		arg := ""
		if len(fields) > 1 {
			arg = fields[1]
		}
		switch fields[0] {
		case "quit", "q", "exit":
			return nil
		case "list":
			n := 20
			if arg != "" {
				n, _ = strconv.Atoi(arg)
			}
			fmt.Print(b.Table(n))
		case "sort":
			key, err := browser.ParseSortKey(arg)
			if err != nil {
				fmt.Println(err)
				continue
			}
			b.SetSort(key)
			fmt.Print(b.Table(20))
		case "filter":
			b.SetPerceptibleOnly(arg == "on")
			fmt.Print(b.Table(20))
		case "sel":
			i, convErr := strconv.Atoi(arg)
			if convErr != nil {
				fmt.Println("sel needs a pattern index")
				continue
			}
			if err := b.Select(i); err != nil {
				fmt.Println(err)
				continue
			}
			fmt.Print(b.EpisodeList())
		case "eps":
			fmt.Print(b.EpisodeList())
		case "next":
			b.NextEpisode()
			if txt, ok := b.SketchText(); ok {
				fmt.Print(txt)
			}
		case "prev":
			b.PrevEpisode()
			if txt, ok := b.SketchText(); ok {
				fmt.Print(txt)
			}
		case "sketch":
			if txt, ok := b.SketchText(); ok {
				fmt.Print(txt)
			} else {
				fmt.Println("select a pattern first (sel <i>)")
			}
		case "svg":
			svg, ok := b.SketchSVG()
			if !ok {
				fmt.Println("select a pattern first (sel <i>)")
				continue
			}
			if arg == "" {
				fmt.Println("svg needs a file name")
				continue
			}
			if err := obs.WriteFileAtomic(arg, []byte(svg), 0o644); err != nil {
				fmt.Println(err)
				continue
			}
			fmt.Println("wrote", arg)
		default:
			fmt.Printf("unknown command %q\n", fields[0])
		}
	}
}
