package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"lagalyzer/internal/apps"
	"lagalyzer/internal/lila"
	"lagalyzer/internal/sim"
)

// encodeTextSession renders one simulated session as a LiLa text
// trace, returning the bytes and the offset where the header ends.
func encodeTextSession(t *testing.T, app string, seed uint64, seconds float64) []byte {
	t.Helper()
	profile, err := apps.ByName(app)
	if err != nil {
		t.Fatal(err)
	}
	recs, h, err := sim.Records(sim.Config{Profile: profile, Seed: seed, SessionSeconds: seconds})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := lila.NewWriter(&buf, lila.FormatText, h)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFollowTailsGrowingTrace: -follow must pick up bytes appended
// after it started — including an append that lands mid-record — and
// return as soon as the end record arrives, the way a live profiler
// finishes a session.
func TestFollowTailsGrowingTrace(t *testing.T) {
	data := encodeTextSession(t, "Jmol", 5, 10)
	path := filepath.Join(t.TempDir(), "grow.lila")

	// Start with 40% of the trace, cutting mid-line to prove the
	// partial tail stays buffered until the writer completes it.
	cut := 2 * len(data) / 5
	if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- followOne(path, 2*time.Millisecond, 0) }()

	// Append the rest in three uneven chunks while the follower runs.
	rest := data[cut:]
	third := len(rest) / 3
	for _, chunk := range [][]byte{rest[:third], rest[third : 2*third], rest[2*third:]} {
		time.Sleep(10 * time.Millisecond)
		f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(chunk); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("followOne: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follower did not stop at the end record")
	}
}

// TestFollowIdleBudget: with no end record ever arriving, -follow-idle
// bounds the wait — the follower reports what it saw and exits instead
// of hanging forever on a dead writer. Runs in salvage mode, as a
// live follower tailing an abruptly-dead profiler would: the strict
// reader rightly rejects the missing end record.
func TestFollowIdleBudget(t *testing.T) {
	salvageMode = true
	defer func() { salvageMode = false }()
	data := encodeTextSession(t, "CrosswordSage", 6, 10)
	path := filepath.Join(t.TempDir(), "stalled.lila")
	// Truncate on a line boundary before the end record.
	cut := bytes.LastIndexByte(data[:len(data)*3/4], '\n') + 1
	if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- followOne(path, 2*time.Millisecond, 50*time.Millisecond) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("followOne after idle: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follower ignored the idle budget")
	}
}
