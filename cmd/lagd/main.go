// Command lagd is the supervised LagAlyzer analysis service: a
// long-lived HTTP daemon that accepts analysis jobs (simulated profile
// studies or recorded trace directories), runs them on a bounded
// worker pool with per-job deadlines, retries transient failures with
// exponential backoff, sheds load with 429 + Retry-After when the
// queue or memory budget fills, isolates worker panics, and on
// SIGINT/SIGTERM drains in-flight jobs and checkpoints the rest so a
// restarted daemon picks up where it left off. While draining,
// /healthz answers 503 with a "draining" body so load balancers and
// distributed-study coordinators stop routing new work here.
//
// lagd nodes also serve as workers for distributed studies: a "shard"
// job runs one application (or loads one slice of a trace corpus) and
// exposes its mergeable partial state — checksum-framed — at
// /jobs/{id}/state for the coordinator (lagreport -workers) to
// collect.
//
// With -ingest (the default) lagd also accepts live LiLa record
// streams: POST /ingest/{app}/{session} consumes a chunked stream
// incrementally — salvage-decoded, memory-budgeted, slow-loris-proof —
// and folds it into per-window aggregates queryable mid-session at
// GET /ingest/stats. With -state, completed windows are journaled
// crash-safely under <state>/ingest, so a killed daemon restarts
// without double-counting; /readyz answers 503 with reasons while the
// queue is saturated, the ingest budget is exhausted, or drain has
// begun.
//
//	# stream a trace into the live aggregator and watch it
//	curl -sN -X POST --data-binary @session.lila \
//	  -H 'Content-Type: application/octet-stream' \
//	  localhost:8077/ingest/Jmol/7
//	curl -s localhost:8077/ingest/stats
//
// Usage:
//
//	lagd -addr :8077 -state /var/lib/lagd
//
//	# submit a study job
//	curl -s -X POST localhost:8077/jobs \
//	  -d '{"kind":"study","apps":["Jmol"],"sessions":2,"seed":7}'
//	# poll it
//	curl -s localhost:8077/jobs/job-1
//	# fetch the result
//	curl -s 'localhost:8077/jobs/job-1/result?format=text'
//	# run a distributed shard and fetch its partial state
//	curl -s -X POST localhost:8077/jobs \
//	  -d '{"kind":"shard","apps":["Jmol"],"sessions":2,"seed":7}'
//	curl -s localhost:8077/jobs/job-2/state -o shard.bin
//	# with -self-profile: fetch the job's own trace and analyze it
//	curl -s localhost:8077/jobs/job-1/selftrace -o job-1.lila
//	lagalyzer report job-1.lila
//
// Job lifecycle and HTTP access are logged via log/slog (-log-format
// text|json). /metrics serves the obs snapshot, or the Prometheus
// text exposition format with ?format=prom.
//
// Exit codes: 0 clean drain (every accepted job finished), 1 fatal
// error, 2 usage error, 3 partial (accepted jobs were checkpointed for
// the next instance rather than finished).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"path/filepath"

	"lagalyzer/internal/ingest"
	"lagalyzer/internal/obs"
	"lagalyzer/internal/serve"
	"lagalyzer/internal/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr        = flag.String("addr", ":8077", "HTTP listen address")
		workers     = flag.Int("workers", 2, "job worker pool size")
		queue       = flag.Int("queue", 16, "pending-job queue depth (full queue sheds with 429)")
		deadline    = flag.Duration("deadline", 2*time.Minute, "default per-job execution deadline")
		retries     = flag.Int("retries", 2, "retries granted to retryable job failures")
		grace       = flag.Duration("grace", 5*time.Second, "shutdown grace for in-flight jobs before their contexts are canceled")
		stateDir    = flag.String("state", "", "state directory for checkpoints and pending jobs (empty = no persistence)")
		memMB       = flag.Int64("mem-budget-mb", 0, "admission-control memory budget in MiB (0 = lila default)")
		jobs        = flag.Int("jobs", 0, "trace files decoded concurrently per trace job (0 = one per CPU, 1 = sequential)")
		logFormat   = flag.String("log-format", "text", "structured log encoding: text or json")
		selfProfile = flag.Bool("self-profile", false, "record each job's own pipeline spans as a LiLa v2 trace (GET /jobs/{id}/selftrace; persisted under -state/selftrace)")

		ingestOn     = flag.Bool("ingest", true, "serve live streaming ingestion (POST /ingest/{app}/{session}, GET /ingest/stats)")
		ingestWindow = flag.Duration("ingest-window", 10*time.Second, "aggregation window for streamed sessions (session-relative trace time)")
		ingestMemMB  = flag.Int64("ingest-mem-budget-mb", 0, "global memory budget for live ingest sessions in MiB (0 = 256)")
		ingestSessMB = flag.Int64("ingest-session-mb", 0, "per-session ingest memory budget in MiB; over-budget sessions degrade to stats-only, then are evicted (0 = 32)")
		ingestMax    = flag.Int("ingest-max-sessions", 0, "concurrent ingest session cap (0 = 1024)")
		ingestIdle   = flag.Duration("ingest-idle", 60*time.Second, "evict ingest sessions idle this long")
		ingestReadTO = flag.Duration("ingest-read-timeout", 30*time.Second, "per-chunk read deadline for ingest streams (slow-loris guard)")
	)
	profiler := obs.AddProfileFlags(flag.CommandLine)
	flag.Parse()

	var logger *slog.Logger
	switch *logFormat {
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		fmt.Fprintf(os.Stderr, "lagd: unknown -log-format %q (want text or json)\n", *logFormat)
		return 2
	}

	stopProfiles, err := profiler.Start()
	if err != nil {
		return fatal(err)
	}
	defer stopProfiles()

	var ingestSrv *ingest.Server
	if *ingestOn {
		journalDir := ""
		if *stateDir != "" {
			journalDir = filepath.Join(*stateDir, "ingest")
		}
		ingestSrv, err = ingest.New(ingest.Config{
			WindowDur:     trace.Dur(*ingestWindow),
			MemoryBudget:  *ingestMemMB << 20,
			SessionBudget: *ingestSessMB << 20,
			MaxSessions:   *ingestMax,
			IdleTimeout:   *ingestIdle,
			ReadTimeout:   *ingestReadTO,
			JournalDir:    journalDir,
			Logger:        logger,
		})
		if err != nil {
			return fatal(err)
		}
	}

	srv, err := serve.New(serve.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		DefaultDeadline: *deadline,
		MaxRetries:      *retries,
		ShutdownGrace:   *grace,
		StateDir:        *stateDir,
		MemoryBudget:    *memMB << 20,
		LoadJobs:        *jobs,
		SelfProfile:     *selfProfile,
		Logger:          logger,
		Ingest:          ingestSrv,
	})
	if err != nil {
		return fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.Serve(ln) }()
	endpoints := "POST /jobs, GET /jobs/{id}, /metrics, /healthz, /readyz"
	if ingestSrv != nil {
		endpoints += ", POST /ingest/{app}/{session}, GET /ingest/stats"
	}
	fmt.Fprintf(os.Stderr, "lagd: serving on http://%s (%s)\n", ln.Addr(), endpoints)

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	select {
	case <-ctx.Done():
	case err := <-httpErr:
		return fatal(fmt.Errorf("http server: %w", err))
	}
	stopSignals()
	fmt.Fprintln(os.Stderr, "lagd: signal received — draining")

	// Flip the health signal before touching the listener: keep-alive
	// clients probing /healthz during the connection drain must see
	// 503 "draining", not a healthy 200.
	srv.BeginDrain()

	// Stop accepting connections first, then drain the job queue. The
	// whole shutdown is bounded by twice the grace (listener close plus
	// in-flight drain plus persistence).
	shutCtx, cancel := context.WithTimeout(context.Background(), 2**grace+10*time.Second)
	defer cancel()
	httpSrv.Shutdown(shutCtx)

	checkpointed, err := srv.Shutdown(shutCtx)
	if err != nil {
		return fatal(err)
	}
	if checkpointed > 0 {
		fmt.Fprintf(os.Stderr, "lagd: drained with %d job(s) checkpointed for the next run; exiting 3\n", checkpointed)
		return 3
	}
	fmt.Fprintln(os.Stderr, "lagd: drained cleanly")
	return 0
}

func fatal(err error) int {
	fmt.Fprintln(os.Stderr, "lagd:", err)
	return 1
}
