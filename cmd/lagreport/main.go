// Command lagreport reproduces the paper's full characterization
// study (Section IV): it simulates the 14 applications × 4 sessions,
// runs every analysis, prints the tables and figure data as text, and
// optionally writes the figures as SVG plus an EXPERIMENTS.md
// comparison against the paper's published numbers.
//
// Usage:
//
//	lagreport                         # full study, text output
//	lagreport -sessions 2 -seed 7     # scaled down
//	lagreport -out results/           # also write SVGs + experiments.md + report.html + runmeta.json
//	lagreport -traces dir/            # analyze recorded traces instead
//	lagreport -traces dir/ -salvage   # tolerate damaged traces (resync + lenient rebuild)
//	lagreport -traces dir/ -strict    # historical fail-fast: first bad file aborts
//	lagreport -workers http://w1:8080,http://w2:8080
//	                                  # distribute the study over lagd workers
//	lagreport -only table3,fig5      # subset of sections
//	lagreport -progress               # per-session progress + ETA on stderr
//	lagreport -phases                 # per-phase span summary on stderr
//	lagreport -debug-addr :6060       # live pprof + /metrics while running
//	lagreport -cpuprofile cpu.out     # also -memprofile, -trace
//	lagreport -self-profile self.lila # emit this run's own spans as a LiLa v2 trace
//
// With -out the study is also crash-safe: each completed application
// is checkpointed under <out>/.checkpoint, SIGINT/SIGTERM flush the
// completed part as a partial report, and rerunning with the same
// flags resumes from the checkpoints to byte-identical final output.
//
// With -workers the study (or -traces load) is sharded over the named
// lagd job servers and merged back to byte-identical output, with
// retries, hedging, worker ejection, and local fallback on exhausted
// shards (unrecoverable shards are itemized in the Health section).
// The checkpoint store under -out is shared with single-node runs:
// resuming a distributed study locally, or vice versa, reuses every
// completed app.
//
// Exit codes: 0 success, 1 total failure, 2 usage error, 3 partial
// success (the study completed but lost whole sessions or apps; see
// the Health section).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"lagalyzer/internal/dist"
	"lagalyzer/internal/obs"
	"lagalyzer/internal/obs/selftrace"
	"lagalyzer/internal/report"
	"lagalyzer/internal/trace"
)

func main() {
	os.Exit(run())
}

// run is main's body with a return code, so deferred cleanups (profile
// writers, the debug server) execute before the process exits.
func run() int {
	var (
		sessions    = flag.Int("sessions", 4, "sessions per application")
		seed        = flag.Uint64("seed", 42, "base random seed")
		seconds     = flag.Float64("seconds", 0, "session length override in seconds (0 = profile defaults)")
		traces      = flag.String("traces", "", "analyze LiLa traces from this directory instead of simulating")
		salvage     = flag.Bool("salvage", false, "with -traces: salvage damaged trace files (resynchronize past wire damage, rebuild leniently)")
		strict      = flag.Bool("strict", false, "with -traces: fail fast on the first unloadable trace file")
		jobs        = flag.Int("jobs", 0, "with -traces: trace files decoded concurrently (0 = one per CPU, 1 = sequential)")
		outDir      = flag.String("out", "", "directory for SVG figures, experiments.md, and runmeta.json (empty = text only)")
		only        = flag.String("only", "", "comma-separated sections: table2,table3,fig3..fig8,findings (empty = all)")
		progress    = flag.Bool("progress", false, "print per-session study progress with an ETA to stderr")
		phases      = flag.Bool("phases", false, "print the per-phase span summary to stderr after the run")
		debugAddr   = flag.String("debug-addr", "", "serve live pprof and /metrics JSON on this address while running")
		selfProfile = flag.String("self-profile", "", "write a LiLa v2 trace of this run's own pipeline spans to this file")
		workersFlag = flag.String("workers", "", "comma-separated lagd worker base URLs: shard the study (or -traces load) across them")
		hedgeAfter  = flag.Duration("hedge-after", 0, "with -workers: hedge a straggling shard on a second worker after this long (0 = no hedging)")
		noFallback  = flag.Bool("no-local-fallback", false, "with -workers: itemize exhausted shards as lost instead of re-running them locally")
	)
	profiler := obs.AddProfileFlags(flag.CommandLine)
	flag.Parse()

	stopProfiles, err := profiler.Start()
	if err != nil {
		fail(err)
	}
	defer stopProfiles()

	if *debugAddr != "" {
		srv, err := obs.ServeDebug(*debugAddr, nil)
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "lagreport: debug server on http://%s (/metrics, /debug/pprof/)\n", srv.Addr())
	}

	meta := obs.NewRunMeta("lagreport")
	flag.Visit(func(f *flag.Flag) { meta.Flags[f.Name] = f.Value.String() })

	tr := obs.NewTrace()
	ctx := obs.WithTrace(context.Background(), tr)
	// SIGINT/SIGTERM cancel the study context instead of killing the
	// process mid-write: completed apps are flushed as a partial report
	// (exit code 3), and with -out their checkpoints survive for the
	// next run to resume.
	ctx, stopSignals := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	var progressW io.Writer
	if *progress {
		progressW = os.Stderr
	}

	// The out directory must exist before the study so the checkpoint
	// store can live under it from the first completed app.
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fail(err)
		}
	}

	var coord *dist.Coordinator
	if *workersFlag != "" {
		if *strict {
			fail(fmt.Errorf("-strict is a single-node fail-fast mode; it cannot combine with -workers"))
		}
		var workers []string
		for _, w := range strings.Split(*workersFlag, ",") {
			if w = strings.TrimSpace(w); w != "" {
				workers = append(workers, w)
			}
		}
		coord, err = dist.New(dist.Options{
			Workers:         workers,
			HedgeAfter:      *hedgeAfter,
			NoLocalFallback: *noFallback,
		})
		if err != nil {
			fail(err)
		}
	}

	start := time.Now()
	var res *report.StudyResult
	if *traces != "" {
		opts := report.LoadOptions{
			Salvage: *salvage,
			Strict:  *strict,
			Jobs:    *jobs,
		}
		var suites []*trace.Suite
		var loadHealth *report.StudyHealth
		if coord != nil {
			var tr *dist.TracesResult
			tr, err = coord.RunTraces(ctx, *traces, opts, 0)
			if tr != nil {
				suites, loadHealth = tr.Suites, tr.Health
			}
		} else {
			suites, loadHealth, err = report.LoadTraceDirContext(ctx, *traces, opts)
		}
		if err == nil {
			res = report.AnalyzeSuitesContext(ctx, suites, 0, progressW)
			res.Health.Merge(loadHealth)
		}
	} else {
		cfg := report.StudyConfig{
			Seed:           *seed,
			SessionsPerApp: *sessions,
			SessionSeconds: *seconds,
			Progress:       progressW,
		}
		if *outDir != "" {
			cfg.CheckpointDir = filepath.Join(*outDir, ".checkpoint")
		}
		if coord != nil {
			res, err = coord.RunStudy(ctx, cfg)
		} else {
			res, err = report.RunStudyContext(ctx, cfg)
		}
	}
	if err != nil {
		if res == nil {
			fail(err)
		}
		// Canceled mid-study with survivors: flush everything completed
		// so the interruption costs no finished work.
		fmt.Fprintln(os.Stderr,
			"lagreport: interrupted — flushing partial results (rerun with the same flags to resume)")
	}
	elapsed := time.Since(start)

	sections := map[string]func() string{
		"table2": func() string { return "== Table II: applications ==\n" + report.FormatTable2() },
		"table3": func() string { return "== Table III (paper vs ours) ==\n" + report.FormatTable3Comparison(res.Rows) },
		"fig3":   func() string { return "== Figure 3 ==\n" + report.FormatFigure3(res) },
		"fig4":   func() string { return "== Figure 4 ==\n" + report.FormatFigure4(res) },
		"fig5":   func() string { return "== Figure 5 ==\n" + report.FormatFigure5(res) },
		"fig6":   func() string { return "== Figure 6 ==\n" + report.FormatFigure6(res) },
		"fig7":   func() string { return "== Figure 7 ==\n" + report.FormatFigure7(res) },
		"fig8":   func() string { return "== Figure 8 ==\n" + report.FormatFigure8(res) },
		"findings": func() string {
			return "== Section IV findings (paper vs ours) ==\n" + report.FormatFindings(report.Findings(res))
		},
	}
	order := []string{"table2", "table3", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "findings"}

	selected := map[string]bool{}
	if *only == "" {
		for _, s := range order {
			selected[s] = true
		}
	} else {
		for _, s := range strings.Split(*only, ",") {
			s = strings.TrimSpace(s)
			if _, ok := sections[s]; !ok {
				fail(fmt.Errorf("unknown section %q (want one of %s)", s, strings.Join(order, ",")))
			}
			selected[s] = true
		}
	}
	for _, s := range order {
		if selected[s] {
			fmt.Println(sections[s]())
		}
	}
	if res.Health.Degraded() {
		fmt.Println("== Health: inputs lost or degraded ==\n" + report.FormatHealth(res.Health))
	}
	fmt.Printf("analyzed %d traced episodes across %d applications in %v\n",
		res.TotalEpisodes(), len(res.Apps), elapsed.Round(time.Millisecond))
	fmt.Println("(the paper: ~250'000 episodes from 7.5 h of sessions analyzed in 15 minutes)")

	if *phases {
		fmt.Fprint(os.Stderr, "== phase summary ==\n"+tr.Format())
	}

	// The self-trace is written after every analysis result above is
	// final, so enabling it cannot perturb the study output.
	if *selfProfile != "" {
		if err := selftrace.WriteFile(*selfProfile, tr, selftrace.Options{App: "lagreport"}); err != nil {
			fail(err)
		}
		meta.SelfTrace = *selfProfile
		fmt.Fprintf(os.Stderr, "lagreport: wrote self-trace to %s (analyze with: lagalyzer report %s)\n",
			*selfProfile, *selfProfile)
	}

	if *outDir == "" {
		return exitCode(res)
	}
	for name, svg := range report.Figures(res) {
		if err := obs.WriteFileAtomic(filepath.Join(*outDir, name), []byte(svg), 0o644); err != nil {
			fail(err)
		}
	}
	md := report.FormatExperimentsMarkdown(res)
	if err := obs.WriteFileAtomic(filepath.Join(*outDir, "experiments.md"), []byte(md), 0o644); err != nil {
		fail(err)
	}
	if err := obs.WriteFileAtomic(filepath.Join(*outDir, "report.html"), []byte(report.FormatHTML(res)), 0o644); err != nil {
		fail(err)
	}
	if res.Health.Degraded() {
		meta.Health = res.Health
	}
	meta.Finish(tr, nil)
	if err := meta.WriteFile(filepath.Join(*outDir, "runmeta.json")); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %d figures, experiments.md, report.html, and runmeta.json to %s\n",
		len(report.Figures(res)), *outDir)
	return exitCode(res)
}

// exitCode maps a finished study to the process exit code: 3 when a
// whole unit of work (a session or an app) was lost, 0 otherwise.
func exitCode(res *report.StudyResult) int {
	if res.Health.Partial() {
		fmt.Fprintln(os.Stderr, "lagreport: partial results — some inputs were lost (see the Health section); exiting 3")
		return 3
	}
	return 0
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "lagreport:", err)
	os.Exit(1)
}
