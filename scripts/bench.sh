#!/bin/sh
# Runs the analysis-engine benchmark suite and emits BENCH_engine.json
# at the repo root, so successive PRs can track the perf trajectory.
# The file embeds the environment (go version, GOMAXPROCS, CPU model,
# git SHA) so numbers from different machines/commits are comparable.
# Usage: scripts/bench.sh [benchtime]   (default 1s)
set -eu

cd "$(dirname "$0")/.."
benchtime="${1:-1s}"
out="BENCH_engine.json"

go_version="$(go version | sed 's/^go version //')"
gomaxprocs="${GOMAXPROCS:-$(nproc 2>/dev/null || echo 1)}"
cpu_model="$(awk -F': ' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || true)"
[ -n "$cpu_model" ] || cpu_model="unknown"
git_sha="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
git_dirty=""
[ -z "$(git status --porcelain 2>/dev/null)" ] || git_dirty="-dirty"

raw=$(go test -run '^$' \
	-bench 'AnalyzeSuite|ClassifyParallel|Figure3_PatternCDF|TableIII_Overview|Study_EndToEnd|LoadTraceDir|TraceDecode_(Text|Binary|V2|V2Mmap|V2Compressed)$' \
	-benchtime "$benchtime" .)

# The intra-file parallel decode bench runs separately at -cpu 1,4 so
# the baseline records both points of the scaling curve; the awk below
# keeps the cpu count in the name instead of stripping it.
rawp=$(go test -run '^$' -bench 'TraceDecode_V2ParallelBlocks' -cpu 1,4 -benchtime "$benchtime" .)
raw=$(printf '%s\n%s' "$raw" "$rawp")

printf '%s\n' "$raw"

# Write to a temp file and rename, so an interrupted run never leaves
# a truncated BENCH_engine.json under the final name.
tmp="$out.tmp-$$"
trap 'rm -f "$tmp"' EXIT

printf '%s\n' "$raw" | awk \
	-v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	-v procs="$gomaxprocs" \
	-v go_version="$go_version" \
	-v cpu_model="$cpu_model" \
	-v git_sha="$git_sha$git_dirty" '
BEGIN {
	printf "{\n  \"date\": \"%s\",\n", date
	printf "  \"go_version\": \"%s\",\n", go_version
	printf "  \"gomaxprocs\": %s,\n", procs
	printf "  \"git_sha\": \"%s\",\n", git_sha
	printf "  \"benchmarks\": [\n"
}
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
	name = $1
	# go test suffixes bench names with the GOMAXPROCS used when it is
	# not 1. For the intra-file parallel bench the cpu count IS the
	# variable under test, so fold it into the name; everywhere else
	# strip it so names stay stable across machines.
	ncpu = 1
	if (match(name, /-[0-9]+$/)) ncpu = substr(name, RSTART + 1)
	sub(/-[0-9]+$/, "", name); sub(/^Benchmark/, "", name)
	if (name ~ /ParallelBlocks/) name = name "_cpu" ncpu
	nsop = "null"; bop = "null"; allocs = "null"
	for (i = 2; i < NF; i++) {
		if ($(i+1) == "ns/op") nsop = $i
		if ($(i+1) == "B/op") bop = $i
		if ($(i+1) == "allocs/op") allocs = $i
	}
	if (n++) printf ",\n"
	printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
		name, nsop, bop, allocs
}
END {
	# One canonical CPU key: prefer the line go test itself reports,
	# fall back to /proc/cpuinfo when the bench output omits it.
	if (cpu == "") cpu = cpu_model
	printf "\n  ],\n  \"cpu_model\": \"%s\"\n}\n", cpu
}
' >"$tmp"
mv "$tmp" "$out"

echo "wrote $out"
