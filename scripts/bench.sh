#!/bin/sh
# Runs the analysis-engine benchmark suite and emits BENCH_engine.json
# at the repo root, so successive PRs can track the perf trajectory.
# Usage: scripts/bench.sh [benchtime]   (default 1s)
set -eu

cd "$(dirname "$0")/.."
benchtime="${1:-1s}"
out="BENCH_engine.json"

raw=$(go test -run '^$' \
	-bench 'AnalyzeSuite|ClassifyParallel|Figure3_PatternCDF|TableIII_Overview|Study_EndToEnd' \
	-benchtime "$benchtime" .)

printf '%s\n' "$raw"

printf '%s\n' "$raw" | awk \
	-v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	-v procs="$(nproc 2>/dev/null || echo 1)" '
BEGIN { printf "{\n  \"date\": \"%s\",\n  \"cpus\": %s,\n  \"benchmarks\": [\n", date, procs }
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
	name = $1; sub(/-[0-9]+$/, "", name); sub(/^Benchmark/, "", name)
	nsop = "null"; bop = "null"; allocs = "null"
	for (i = 2; i < NF; i++) {
		if ($(i+1) == "ns/op") nsop = $i
		if ($(i+1) == "B/op") bop = $i
		if ($(i+1) == "allocs/op") allocs = $i
	}
	if (n++) printf ",\n"
	printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
		name, nsop, bop, allocs
}
END { printf "\n  ],\n  \"cpu\": \"%s\"\n}\n", cpu }
' >"$out"

echo "wrote $out"
