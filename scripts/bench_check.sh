#!/bin/sh
# Smoke-checks the v2 codec benchmarks against the pinned baselines in
# BENCH_engine.json and fails on gross regressions. The threshold is
# deliberately generous (default 8x, override with BENCH_TOLERANCE):
# CI machines differ from the machine that wrote the baseline and the
# run is short, so this catches accidental algorithmic regressions
# (a quadratic loop, a lost fast path), not percent-level drift.
# Usage: scripts/bench_check.sh [benchtime]   (default 3x)
set -eu

cd "$(dirname "$0")/.."
baseline="BENCH_engine.json"
tolerance="${BENCH_TOLERANCE:-8}"
benchtime="${1:-3x}"

if [ ! -f "$baseline" ]; then
	echo "bench_check: no $baseline baseline; nothing to compare"
	exit 0
fi

raw=$(go test -run '^$' -bench 'TraceDecode_V2|LoadTraceDirV2' -benchtime "$benchtime" .)
printf '%s\n' "$raw"

printf '%s\n' "$raw" | awk -v tol="$tolerance" -v baseline="$baseline" '
BEGIN {
	# Pull the ns_per_op baselines out of BENCH_engine.json. The file
	# is machine-written and flat, so field surgery is enough.
	while ((getline line < baseline) > 0) {
		if (line !~ /"name"/) continue
		name = line; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
		ns = line; sub(/.*"ns_per_op": /, "", ns); sub(/[,}].*/, "", ns)
		if (ns != "null") base[name] = ns + 0
	}
	close(baseline)
}
/^Benchmark/ {
	name = $1; sub(/-[0-9]+$/, "", name); sub(/^Benchmark/, "", name)
	ns = ""
	for (i = 2; i < NF; i++) if ($(i + 1) == "ns/op") ns = $i + 0
	# Benches absent from the baseline (e.g. the -cpu variants, which
	# the baseline stores under _cpuN names) are informational only.
	if (ns == "" || !(name in base)) next
	checked++
	if (ns > base[name] * tol) {
		printf "bench_check: REGRESSION %s: %.0f ns/op vs baseline %.0f (tolerance %gx)\n", name, ns, base[name], tol
		bad++
	} else {
		printf "bench_check: %s ok: %.0f ns/op vs baseline %.0f\n", name, ns, base[name]
	}
}
END {
	if (!checked) print "bench_check: warning: no benchmarks overlapped the baseline"
	if (bad) exit 1
}
'
echo "bench_check: ok"
