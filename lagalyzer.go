// Package lagalyzer is a from-scratch Go reproduction of LagAlyzer, the
// latency-profile analysis and visualization tool of Adamoli, Jovic,
// and Hauswirth (ISPASS 2010).
//
// LagAlyzer analyzes traces of interactive application sessions —
// nested trees of dispatch/listener/paint/native/async/GC intervals
// plus periodic call-stack samples of all threads — and characterizes
// *perceptible lag*: episodes of user-request handling that exceed the
// 100 ms perceptibility threshold.
//
// The package is a facade over the implementation:
//
//   - trace model and sessions (internal/trace),
//   - the LiLa trace format, text and binary (internal/lila),
//   - trace → session reconstruction (internal/treebuild),
//   - a deterministic simulator of interactive Java sessions standing
//     in for the paper's real applications (internal/sim) and the 14
//     study profiles (internal/apps),
//   - episode pattern classification (internal/patterns),
//   - the characterization analyses of Section IV (internal/analysis),
//   - the pattern browser (internal/browser),
//   - SVG/text visualization (internal/viz), and
//   - the full-study harness reproducing Table III and Figures 3-8
//     (internal/report).
//
// A minimal end-to-end use:
//
//	profile, _ := lagalyzer.ProfileByName("Jmol")
//	session, _ := lagalyzer.Simulate(lagalyzer.SimConfig{Profile: profile, Seed: 1})
//	set := lagalyzer.Classify([]*lagalyzer.Session{session}, lagalyzer.PatternOptions{})
//	for _, p := range set.Patterns[:3] {
//		fmt.Println(p.Count(), p.AvgLag(), p.Canon)
//	}
//
// "Developers who want to write their own analysis can implement it
// using the straightforward API provided by the core" — the same holds
// here: Session, Episode, Interval, and SampleTick expose the complete
// in-memory trace representation.
package lagalyzer

import (
	"io"

	"lagalyzer/internal/analysis"
	"lagalyzer/internal/apps"
	"lagalyzer/internal/browser"
	"lagalyzer/internal/lila"
	"lagalyzer/internal/patterns"
	"lagalyzer/internal/report"
	"lagalyzer/internal/sim"
	"lagalyzer/internal/trace"
	"lagalyzer/internal/treebuild"
	"lagalyzer/internal/viz"
)

// Core trace model.
type (
	// Session is the complete trace of one interactive session.
	Session = trace.Session
	// Suite groups the sessions recorded for one application.
	Suite = trace.Suite
	// Episode is one user request handled on the GUI thread.
	Episode = trace.Episode
	// Interval is one node of an episode's interval tree.
	Interval = trace.Interval
	// Kind is the interval type (dispatch, listener, paint, native,
	// async, gc).
	Kind = trace.Kind
	// ThreadState is a sampled thread's scheduling state.
	ThreadState = trace.ThreadState
	// Frame is one call-stack frame of a sample.
	Frame = trace.Frame
	// SampleTick is one firing of the all-thread sampler.
	SampleTick = trace.SampleTick
	// Time is a point on the session timeline (ns since start).
	Time = trace.Time
	// Dur is a span of session time.
	Dur = trace.Dur
)

// Interval kinds (Table I of the paper).
const (
	KindDispatch = trace.KindDispatch
	KindListener = trace.KindListener
	KindPaint    = trace.KindPaint
	KindNative   = trace.KindNative
	KindAsync    = trace.KindAsync
	KindGC       = trace.KindGC
)

// Thread states (Figure 8 of the paper).
const (
	StateRunnable = trace.StateRunnable
	StateBlocked  = trace.StateBlocked
	StateWaiting  = trace.StateWaiting
	StateSleeping = trace.StateSleeping
)

// Thresholds used throughout the paper.
const (
	// PerceptibleThreshold is the 100 ms episode duration beyond
	// which users perceive lag.
	PerceptibleThreshold = trace.DefaultPerceptibleThreshold
	// FilterThreshold is the profiler's 3 ms trace filter.
	FilterThreshold = trace.DefaultFilterThreshold
)

// Ms converts fractional milliseconds into a Dur.
func Ms(ms float64) Dur { return trace.Ms(ms) }

// --- Trace I/O ---

// TraceFormat selects a trace encoding (text or binary).
type TraceFormat = lila.Format

// Trace encodings.
const (
	FormatText   = lila.FormatText
	FormatBinary = lila.FormatBinary
)

// ReadSession reads a LiLa trace (either encoding, sniffed) and
// reconstructs the session.
func ReadSession(r io.Reader) (*Session, error) { return treebuild.ReadSession(r) }

// WriteSession writes a session as a LiLa trace in the given format.
func WriteSession(w io.Writer, f TraceFormat, s *Session) error {
	return lila.WriteSession(w, f, s)
}

// --- Simulation (the study's workload substrate) ---

// SimConfig configures a simulated session; see internal/sim.Config.
type SimConfig = sim.Config

// Profile describes an application's interactive behaviour.
type Profile = sim.Profile

// Simulate runs one session of the configured application.
func Simulate(cfg SimConfig) (*Session, error) { return sim.Run(cfg) }

// Profiles returns the 14 study application profiles (Table II).
func Profiles() []*Profile { return apps.Catalog() }

// ProfileByName returns a study profile by application name.
func ProfileByName(name string) (*Profile, error) { return apps.ByName(name) }

// --- Pattern classification (Section II-C to II-E) ---

// PatternOptions control classification; the zero value is the
// paper's configuration (GC and timing excluded, symbols included,
// 100 ms threshold).
type PatternOptions = patterns.Options

// PatternSet is the result of classifying sessions into patterns.
type PatternSet = patterns.Set

// Pattern is one equivalence class of structurally identical episodes.
type Pattern = patterns.Pattern

// Occurrence classifies how often a pattern was perceptible.
type Occurrence = patterns.Occurrence

// Occurrence classes (Figure 4).
const (
	OccNever     = patterns.OccNever
	OccOnce      = patterns.OccOnce
	OccSometimes = patterns.OccSometimes
	OccAlways    = patterns.OccAlways
)

// Classify groups the sessions' episodes into structural patterns.
func Classify(sessions []*Session, opt PatternOptions) *PatternSet {
	return patterns.Classify(sessions, opt)
}

// Fingerprint returns an episode's canonical structural form.
func Fingerprint(e *Episode, opt PatternOptions) string { return patterns.Fingerprint(e, opt) }

// --- Characterization analyses (Section IV) ---

// Trigger classifies what initiated an episode (Figure 5).
type Trigger = analysis.Trigger

// Trigger classes.
const (
	TriggerInput       = analysis.TriggerInput
	TriggerOutput      = analysis.TriggerOutput
	TriggerAsync       = analysis.TriggerAsync
	TriggerUnspecified = analysis.TriggerUnspecified
)

// TriggerOf determines an episode's trigger with the paper's rules
// (including the repaint-manager async→output reclassification).
func TriggerOf(e *Episode) Trigger { return analysis.TriggerOf(e, analysis.TriggerOptions{}) }

// TriggerShares, LocationShares, and CauseShares are per-population
// results of the corresponding analyses.
type (
	TriggerShares  = analysis.TriggerShares
	LocationShares = analysis.LocationShares
	CauseShares    = analysis.CauseShares
	Overview       = analysis.Overview
)

// Triggers tallies episode triggers (Figure 5); onlyPerceptible
// restricts to episodes at or above the threshold.
func Triggers(sessions []*Session, threshold Dur, onlyPerceptible bool) TriggerShares {
	return analysis.TriggerAnalysis(sessions, threshold, onlyPerceptible, analysis.TriggerOptions{})
}

// Location computes where episode time went (Figure 6).
func Location(sessions []*Session, threshold Dur, onlyPerceptible bool) LocationShares {
	return analysis.LocationAnalysis(sessions, threshold, onlyPerceptible, nil)
}

// Concurrency returns the average number of runnable threads during
// episodes (Figure 7) and the number of samples behind the average.
func Concurrency(sessions []*Session, threshold Dur, onlyPerceptible bool) (float64, int) {
	return analysis.Concurrency(sessions, threshold, onlyPerceptible)
}

// Causes partitions GUI-thread time by scheduling state (Figure 8).
func Causes(sessions []*Session, threshold Dur, onlyPerceptible bool) CauseShares {
	return analysis.CauseAnalysis(sessions, threshold, onlyPerceptible)
}

// OverviewOf computes an application's Table III row.
func OverviewOf(suite *Suite, threshold Dur) Overview {
	return analysis.OverviewOf(suite, threshold)
}

// --- Visualization and browsing ---

// SketchSVG renders an episode sketch (Figures 1 and 2) as a
// self-contained SVG document with hover tooltips.
func SketchSVG(s *Session, e *Episode) string {
	return viz.Sketch(s, e, viz.SketchOptions{})
}

// SketchText renders an episode sketch for terminals.
func SketchText(s *Session, e *Episode) string { return viz.SketchText(s, e) }

// Browser is the pattern-browser model (Section II-E).
type Browser = browser.Browser

// NewBrowser builds a pattern browser over a classified set.
func NewBrowser(set *PatternSet, threshold Dur) *Browser {
	return browser.New(set, threshold)
}

// --- The full study (Section IV) ---

// StudyConfig configures a characterization run.
type StudyConfig = report.StudyConfig

// StudyResult is a full characterization run: Table III rows plus all
// figure data.
type StudyResult = report.StudyResult

// RunStudy simulates and analyzes the paper's full characterization
// study (14 applications × 4 sessions by default).
func RunStudy(cfg StudyConfig) (*StudyResult, error) { return report.RunStudy(cfg) }
