module lagalyzer

go 1.22
