package lagalyzer

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation (Section IV), an end-to-end study benchmark
// matching the paper's "7.5 hours of sessions analyzed in 15 minutes"
// claim, trace-codec throughput benchmarks, and ablation benchmarks
// for the design decisions DESIGN.md calls out.
//
// Figure/table benchmarks measure the *analysis* cost on a fixed,
// pre-simulated workload; workload generation itself is measured by
// BenchmarkSimulateSession and the end-to-end benchmark.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"lagalyzer/internal/analysis"
	"lagalyzer/internal/apps"
	"lagalyzer/internal/lila"
	"lagalyzer/internal/obs"
	"lagalyzer/internal/obs/selftrace"
	"lagalyzer/internal/patterns"
	"lagalyzer/internal/report"
	"lagalyzer/internal/sim"
	"lagalyzer/internal/stream"
	"lagalyzer/internal/trace"
	"lagalyzer/internal/treebuild"
	"lagalyzer/internal/viz"
)

// benchSuite simulates a fixed GanttProject suite once; all per-figure
// benchmarks analyze it.
var benchSuite = sync.OnceValue(func() *trace.Suite {
	suite := &trace.Suite{App: "GanttProject"}
	for i := 0; i < 2; i++ {
		s, err := sim.Run(sim.Config{Profile: apps.GanttProject(), SessionID: i, Seed: 7})
		if err != nil {
			panic(err)
		}
		suite.Sessions = append(suite.Sessions, s)
	}
	return suite
})

// benchStudy runs a scaled-down full study once for figure benchmarks
// that need all 14 applications.
var benchStudy = sync.OnceValue(func() *report.StudyResult {
	res, err := report.RunStudy(report.StudyConfig{Seed: 7, SessionsPerApp: 1, SessionSeconds: 60})
	if err != nil {
		panic(err)
	}
	return res
})

func BenchmarkTableII_Catalog(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(apps.Catalog()) != 14 {
			b.Fatal("catalog incomplete")
		}
	}
}

func BenchmarkTableIII_Overview(b *testing.B) {
	b.ReportAllocs()
	suite := benchSuite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := analysis.OverviewOf(suite, trace.DefaultPerceptibleThreshold)
		if o.Traced == 0 {
			b.Fatal("empty overview")
		}
	}
	b.ReportMetric(benchEpisodes(suite), "episodes")
}

func benchEpisodes(suite *trace.Suite) float64 {
	n := 0
	for _, s := range suite.Sessions {
		n += len(s.Episodes)
	}
	return float64(n)
}

func BenchmarkFigure1_Sketch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(report.Figure1SVG()) == 0 {
			b.Fatal("empty sketch")
		}
	}
}

func BenchmarkFigure2_DeepSketch(b *testing.B) {
	b.ReportAllocs()
	suite := benchSuite()
	s := suite.Sessions[0]
	var deepest *trace.Episode
	best := -1
	for _, e := range s.Episodes {
		if d := e.Root.Descendants(); d > best {
			deepest, best = e, d
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(viz.Sketch(s, deepest, viz.SketchOptions{})) == 0 {
			b.Fatal("empty sketch")
		}
	}
	b.ReportMetric(float64(best), "descendants")
}

func BenchmarkFigure3_PatternCDF(b *testing.B) {
	b.ReportAllocs()
	suite := benchSuite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := patterns.Classify(suite.Sessions, patterns.Options{})
		if len(set.CDF()) == 0 {
			b.Fatal("empty CDF")
		}
	}
}

func BenchmarkFigure4_Occurrence(b *testing.B) {
	b.ReportAllocs()
	set := patterns.Classify(benchSuite().Sessions, patterns.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(set.OccurrenceCounts()) == 0 {
			b.Fatal("no occurrence classes")
		}
	}
	b.ReportMetric(float64(len(set.Patterns)), "patterns")
}

func BenchmarkFigure5_Triggers(b *testing.B) {
	b.ReportAllocs()
	sessions := benchSuite().Sessions
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := analysis.TriggerAnalysis(sessions, trace.DefaultPerceptibleThreshold, true, analysis.TriggerOptions{})
		if ts.Total == 0 {
			b.Fatal("no perceptible episodes")
		}
	}
}

func BenchmarkFigure6_Location(b *testing.B) {
	b.ReportAllocs()
	sessions := benchSuite().Sessions
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loc := analysis.LocationAnalysis(sessions, trace.DefaultPerceptibleThreshold, true, nil)
		if loc.EpisodeTime == 0 {
			b.Fatal("no episode time")
		}
	}
}

func BenchmarkFigure7_Concurrency(b *testing.B) {
	b.ReportAllocs()
	sessions := benchSuite().Sessions
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, n := analysis.Concurrency(sessions, trace.DefaultPerceptibleThreshold, false); n == 0 {
			b.Fatal("no samples")
		}
	}
}

func BenchmarkFigure8_Causes(b *testing.B) {
	b.ReportAllocs()
	sessions := benchSuite().Sessions
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := analysis.CauseAnalysis(sessions, trace.DefaultPerceptibleThreshold, true); c.Samples == 0 {
			b.Fatal("no samples")
		}
	}
}

// BenchmarkStudy_EndToEnd simulates and analyzes a scaled-down full
// study per iteration. The paper's reference point: ~250'000 episodes
// from 7.5 h of sessions, fully analyzed in 15 minutes (including
// MATLAB chart generation).
func BenchmarkStudy_EndToEnd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := report.RunStudy(report.StudyConfig{Seed: uint64(i), SessionsPerApp: 1, SessionSeconds: 30})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TotalEpisodes()), "episodes")
	}
}

// benchTraceDir writes the shared ingestion corpus — two applications,
// eight sessions — choosing each file's encoding via pick(sessionID).
func benchTraceDir(b *testing.B, pick func(id int) lila.WriteOptions) (string, int) {
	b.Helper()
	dir := b.TempDir()
	files := 0
	for ai, p := range []func() *sim.Profile{apps.GanttProject, apps.SwingSet} {
		for id := 0; id < 4; id++ {
			s, err := sim.Run(sim.Config{Profile: p(), SessionID: id, Seed: 7, SessionSeconds: 10})
			if err != nil {
				b.Fatal(err)
			}
			var buf bytes.Buffer
			if err := lila.WriteSessionOptions(&buf, pick(id), s); err != nil {
				b.Fatal(err)
			}
			name := fmt.Sprintf("app%d_session%d.lila", ai, id)
			if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
				b.Fatal(err)
			}
			files++
		}
	}
	return dir, files
}

func benchLoadTraceDir(b *testing.B, dir string, files int, o report.LoadOptions) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		suites, _, err := report.LoadTraceDirOptions(dir, o)
		if err != nil {
			b.Fatal(err)
		}
		total := 0
		for _, s := range suites {
			total += len(s.Sessions)
		}
		if total != files {
			b.Fatalf("loaded %d sessions, want %d", total, files)
		}
	}
	b.ReportMetric(float64(files), "files")
}

// BenchmarkLoadTraceDir measures the on-disk ingestion path end to
// end: directory scan, format sniffing, concurrent decode (interner,
// record arenas, stack dedup), session rebuild, and the deterministic
// suite merge. The corpus — two applications, eight sessions, both v1
// encodings — is written once outside the timed loop.
func BenchmarkLoadTraceDir(b *testing.B) {
	b.ReportAllocs()
	dir, files := benchTraceDir(b, func(id int) lila.WriteOptions {
		if id%2 == 1 {
			return lila.WriteOptions{Format: lila.FormatText}
		}
		return lila.WriteOptions{Format: lila.FormatBinary}
	})
	benchLoadTraceDir(b, dir, files, report.LoadOptions{})
}

// BenchmarkLoadTraceDirV2 is the same corpus stored block-indexed: the
// mmap + pre-interned-table decode path, no per-record interning and no
// stream framing. Compare against BenchmarkLoadTraceDir for the v2
// ingestion win.
func BenchmarkLoadTraceDirV2(b *testing.B) {
	b.ReportAllocs()
	dir, files := benchTraceDir(b, func(int) lila.WriteOptions { return lila.WriteOptions{Format: lila.FormatV2} })
	benchLoadTraceDir(b, dir, files, report.LoadOptions{})
}

// BenchmarkLoadTraceDirV2Compressed is the same corpus with
// flate-compressed blocks: every block pays one crc + inflate on
// decode. Compare against BenchmarkLoadTraceDirV2 for the decode cost
// of the ~2x size reduction.
func BenchmarkLoadTraceDirV2Compressed(b *testing.B) {
	b.ReportAllocs()
	dir, files := benchTraceDir(b, func(int) lila.WriteOptions {
		return lila.WriteOptions{Format: lila.FormatV2, Compression: lila.CompressionFlate}
	})
	benchLoadTraceDir(b, dir, files, report.LoadOptions{})
}

// BenchmarkLoadTraceDirV2_GUIOnly loads the v2 corpus through the block
// index with a GUI-thread filter: worker-only blocks are skipped
// without decoding, the headline selective-decode case.
func BenchmarkLoadTraceDirV2_GUIOnly(b *testing.B) {
	b.ReportAllocs()
	dir, files := benchTraceDir(b, func(int) lila.WriteOptions { return lila.WriteOptions{Format: lila.FormatV2} })
	benchLoadTraceDir(b, dir, files, report.LoadOptions{GUIOnly: true})
}

// benchDaemonHeavyDir hand-builds a corpus where daemon threads
// dominate: eight worker threads each producing long runs of
// call/sample/return triples between sparse GUI episodes, stored with
// small blocks so most blocks carry no GUI-thread bit at all. This is
// the corpus where block skipping should actually pay — the simulated
// sessions above are GUI-dominated, which is why their GUIOnly numbers
// barely move.
func benchDaemonHeavyDir(b *testing.B) (string, int) {
	b.Helper()
	dir := b.TempDir()
	const daemons = 8
	for file := 0; file < 2; file++ {
		h := lila.Header{App: "daemonheavy", SessionID: file, GUIThread: 1,
			FilterThreshold: trace.Ms(3), SamplePeriod: trace.Ms(10)}
		recs := []*lila.Record{{Type: lila.RecThread, Thread: 1, Name: "AWT-EventQueue-0"}}
		for d := 0; d < daemons; d++ {
			recs = append(recs, &lila.Record{Type: lila.RecThread, Thread: trace.ThreadID(2 + d),
				Name: fmt.Sprintf("Worker-%d", d), Daemon: true})
		}
		tm := trace.Time(trace.Ms(1))
		step := trace.Time(trace.Ms(1))
		for ep := 0; ep < 100; ep++ {
			recs = append(recs,
				&lila.Record{Type: lila.RecCall, Time: tm, Thread: 1, Kind: trace.KindDispatch},
				&lila.Record{Type: lila.RecCall, Time: tm, Thread: 1, Kind: trace.KindListener, Class: "app.Button", Method: "actionPerformed"},
				&lila.Record{Type: lila.RecReturn, Time: tm + step, Thread: 1},
				&lila.Record{Type: lila.RecReturn, Time: tm + step, Thread: 1})
			tm += 2 * step
			for i := 0; i < 100; i++ {
				id := trace.ThreadID(2 + (ep*100+i)%daemons)
				recs = append(recs,
					&lila.Record{Type: lila.RecCall, Time: tm, Thread: id, Kind: trace.KindListener, Class: "app.Worker", Method: "run"},
					&lila.Record{Type: lila.RecSample, Time: tm, Thread: id, State: trace.StateRunnable,
						Stack: []trace.Frame{{Class: "app.Worker", Method: "run"}}},
					&lila.Record{Type: lila.RecReturn, Time: tm + step, Thread: id})
				tm += step
			}
		}
		recs = append(recs, &lila.Record{Type: lila.RecEnd, Time: tm, Count: daemons + 1})

		var buf bytes.Buffer
		w, err := lila.NewV2WriterOptions(&buf, h, lila.V2WriterOptions{BlockRecords: 512})
		if err != nil {
			b.Fatal(err)
		}
		for _, rec := range recs {
			if err := w.WriteRecord(rec); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		name := fmt.Sprintf("daemonheavy_%d.lila", file)
		if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
			b.Fatal(err)
		}
	}
	return dir, 2
}

// BenchmarkLoadTraceDirV2_DaemonHeavy is the full-load baseline for the
// daemon-heavy corpus; BenchmarkLoadTraceDirV2_GUIOnlyDaemonHeavy is
// the selective load that gets to skip the ~90% of blocks holding only
// worker records.
func BenchmarkLoadTraceDirV2_DaemonHeavy(b *testing.B) {
	b.ReportAllocs()
	dir, files := benchDaemonHeavyDir(b)
	benchLoadTraceDir(b, dir, files, report.LoadOptions{})
}

func BenchmarkLoadTraceDirV2_GUIOnlyDaemonHeavy(b *testing.B) {
	b.ReportAllocs()
	dir, files := benchDaemonHeavyDir(b)
	benchLoadTraceDir(b, dir, files, report.LoadOptions{GUIOnly: true})
}

func BenchmarkSimulateSession(b *testing.B) {
	b.ReportAllocs()
	profile := apps.NetBeans()
	for i := 0; i < b.N; i++ {
		s, err := sim.Run(sim.Config{Profile: profile, Seed: uint64(i), SessionSeconds: 60})
		if err != nil {
			b.Fatal(err)
		}
		if len(s.Episodes) == 0 {
			b.Fatal("no episodes")
		}
	}
}

func benchRecords(b *testing.B) ([]*lila.Record, lila.Header) {
	b.Helper()
	recs, h, err := sim.Records(sim.Config{Profile: apps.SwingSet(), Seed: 3, SessionSeconds: 30})
	if err != nil {
		b.Fatal(err)
	}
	return recs, h
}

func benchEncode(b *testing.B, f lila.Format) {
	b.ReportAllocs()
	recs, h := benchRecords(b)
	b.ResetTimer()
	var size int
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w, err := lila.NewWriter(&buf, f, h)
		if err != nil {
			b.Fatal(err)
		}
		for _, rec := range recs {
			if err := w.WriteRecord(rec); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		size = buf.Len()
	}
	b.ReportMetric(float64(len(recs)), "records")
	b.ReportMetric(float64(size)/float64(len(recs)), "bytes/record")
}

func BenchmarkTraceEncode_Text(b *testing.B)   { benchEncode(b, lila.FormatText) }
func BenchmarkTraceEncode_Binary(b *testing.B) { benchEncode(b, lila.FormatBinary) }
func BenchmarkTraceEncode_V2(b *testing.B)     { benchEncode(b, lila.FormatV2) }

func benchDecode(b *testing.B, f lila.Format) {
	b.ReportAllocs()
	recs, h := benchRecords(b)
	var buf bytes.Buffer
	w, err := lila.NewWriter(&buf, f, h)
	if err != nil {
		b.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.WriteRecord(rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := lila.NewReader(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			_, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n != len(recs) {
			b.Fatalf("decoded %d of %d records", n, len(recs))
		}
	}
}

func BenchmarkTraceDecode_Text(b *testing.B)   { benchDecode(b, lila.FormatText) }
func BenchmarkTraceDecode_Binary(b *testing.B) { benchDecode(b, lila.FormatBinary) }

// BenchmarkTraceDecode_V2 measures the streaming v2 reader (the sniffed
// NewReader path); BenchmarkTraceDecode_V2Mmap measures the
// random-access path reports actually take (ParseV2 over a byte slice,
// standing in for the mmap'd file).
func BenchmarkTraceDecode_V2(b *testing.B) { benchDecode(b, lila.FormatV2) }

func benchDecodeV2Random(b *testing.B, comp lila.Compression, jobs int) {
	b.ReportAllocs()
	recs, h := benchRecords(b)
	var buf bytes.Buffer
	w, err := lila.NewWriterOptions(&buf, h, lila.WriteOptions{Format: lila.FormatV2, Compression: comp})
	if err != nil {
		b.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.WriteRecord(rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := lila.ParseV2(raw, lila.Limits{})
		if err != nil {
			b.Fatal(err)
		}
		got, _, err := v.RecordsJobs(nil, false, jobs)
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != len(recs) {
			b.Fatalf("decoded %d of %d records", len(got), len(recs))
		}
	}
}

func BenchmarkTraceDecode_V2Mmap(b *testing.B) {
	benchDecodeV2Random(b, lila.CompressionNone, 1)
}

// BenchmarkTraceDecode_V2Compressed is the random-access decode of the
// same trace with flate-compressed blocks: crc + inflate per block on
// top of the V2Mmap baseline.
func BenchmarkTraceDecode_V2Compressed(b *testing.B) {
	benchDecodeV2Random(b, lila.CompressionFlate, 1)
}

// BenchmarkTraceDecode_V2ParallelBlocks inflates and decodes blocks on
// a worker pool sized to GOMAXPROCS — run with -cpu 1,4 to see the
// intra-file scaling (output is pinned byte-identical across worker
// counts by TestV2ParallelDecodeDeterminism).
func BenchmarkTraceDecode_V2ParallelBlocks(b *testing.B) {
	benchDecodeV2Random(b, lila.CompressionFlate, runtime.GOMAXPROCS(0))
}

// --- Ablations (design decisions of Section II) ---

// BenchmarkAblation_FingerprintGC compares pattern counts with and
// without GC exclusion. Including GC nodes splits classes that differ
// only by an incidental collection (the paper's §II-D rationale for
// excluding them).
func BenchmarkAblation_FingerprintGC(b *testing.B) {
	b.ReportAllocs()
	sessions := benchSuite().Sessions
	b.ResetTimer()
	var withGC, withoutGC int
	for i := 0; i < b.N; i++ {
		withoutGC = len(patterns.Classify(sessions, patterns.Options{}).Patterns)
		withGC = len(patterns.Classify(sessions, patterns.Options{IncludeGC: true}).Patterns)
	}
	b.ReportMetric(float64(withoutGC), "patterns(paper)")
	b.ReportMetric(float64(withGC), "patterns(include-gc)")
	if withGC < withoutGC {
		b.Fatal("including GC nodes cannot merge patterns")
	}
}

// BenchmarkAblation_FingerprintSymbols compares pattern counts with
// and without symbolic information. Kind-only trees collapse distinct
// behaviours into one class, losing the browser's diagnostic value.
func BenchmarkAblation_FingerprintSymbols(b *testing.B) {
	b.ReportAllocs()
	sessions := benchSuite().Sessions
	b.ResetTimer()
	var full, kindOnly int
	for i := 0; i < b.N; i++ {
		full = len(patterns.Classify(sessions, patterns.Options{}).Patterns)
		kindOnly = len(patterns.Classify(sessions, patterns.Options{KindOnly: true}).Patterns)
	}
	b.ReportMetric(float64(full), "patterns(symbols)")
	b.ReportMetric(float64(kindOnly), "patterns(kind-only)")
	if kindOnly > full {
		b.Fatal("dropping symbols cannot split patterns")
	}
}

// BenchmarkAblation_AsyncReclassify measures the repaint-manager
// special case (§IV-C footnote) on Jmol: with the reclassification
// the animation's episodes are output; without it they count as
// asynchronous.
func BenchmarkAblation_AsyncReclassify(b *testing.B) {
	b.ReportAllocs()
	res := benchStudy()
	jmol, ok := res.AppByName("Jmol")
	if !ok {
		b.Fatal("no Jmol in study")
	}
	sessions := jmol.Suite.Sessions
	b.ResetTimer()
	var with, without analysis.TriggerShares
	for i := 0; i < b.N; i++ {
		with = analysis.TriggerAnalysis(sessions, trace.DefaultPerceptibleThreshold, true, analysis.TriggerOptions{})
		without = analysis.TriggerAnalysis(sessions, trace.DefaultPerceptibleThreshold, true, analysis.TriggerOptions{NoAsyncReclassify: true})
	}
	b.ReportMetric(with.Frac(analysis.TriggerOutput)*100, "output%(paper)")
	b.ReportMetric(without.Frac(analysis.TriggerAsync)*100, "async%(ablated)")
	if with.Frac(analysis.TriggerOutput) <= without.Frac(analysis.TriggerOutput) {
		b.Fatal("reclassification had no effect on Jmol")
	}
}

// BenchmarkAblation_Perturbation quantifies measurement overhead (the
// paper's §V future work): the same session with and without a
// LiLa-like profiler perturbation (10 % instrumentation slowdown plus
// profiler allocations), reporting the perceptible-episode inflation.
func BenchmarkAblation_Perturbation(b *testing.B) {
	b.ReportAllocs()
	profile := apps.ArgoUML()
	frac := func(s *trace.Session) float64 {
		if len(s.Episodes) == 0 {
			return 0
		}
		return float64(len(s.PerceptibleEpisodes(trace.DefaultPerceptibleThreshold))) /
			float64(len(s.Episodes)) * 100
	}
	var clean, perturbed float64
	for i := 0; i < b.N; i++ {
		c, err := sim.Run(sim.Config{Profile: profile, Seed: 5, SessionSeconds: 120})
		if err != nil {
			b.Fatal(err)
		}
		p, err := sim.Run(sim.Config{Profile: profile, Seed: 5, SessionSeconds: 120,
			Perturbation: &sim.Perturbation{SlowdownFactor: 1.1, ExtraAllocMBPerSec: 20}})
		if err != nil {
			b.Fatal(err)
		}
		clean, perturbed = frac(c), frac(p)
	}
	b.ReportMetric(clean, "perceptible%(clean)")
	b.ReportMetric(perturbed, "perceptible%(perturbed)")
	if perturbed <= clean {
		b.Log("note: perturbation did not inflate the perceptible fraction this run")
	}
}

// BenchmarkThresholdSweep measures the perceptibility-threshold
// sensitivity analysis and reports how the perceptible count moves
// across the literature's thresholds.
func BenchmarkThresholdSweep(b *testing.B) {
	b.ReportAllocs()
	sessions := benchSuite().Sessions
	var points []analysis.ThresholdPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points = analysis.ThresholdSweep(sessions, nil)
	}
	b.ReportMetric(float64(points[0].Episodes), "episodes@100ms")
	b.ReportMetric(float64(points[len(points)-1].Episodes), "episodes@225ms")
}

// BenchmarkStreamingAnalysis compares the single-pass analyzer's
// throughput against full session reconstruction on the same records.
func BenchmarkStreamingAnalysis(b *testing.B) {
	b.ReportAllocs()
	recs, h := benchRecords(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := stream.AnalyzeRecords(h, recs, 0)
		if err != nil {
			b.Fatal(err)
		}
		if st.Episodes == 0 {
			b.Fatal("no episodes")
		}
	}
	b.ReportMetric(float64(len(recs)), "records")
}

// BenchmarkFullRebuild is the baseline for BenchmarkStreamingAnalysis:
// treebuild plus the equivalent full analyses.
func BenchmarkFullRebuild(b *testing.B) {
	b.ReportAllocs()
	recs, h := benchRecords(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, _, err := treebuild.BuildRecords(h, recs)
		if err != nil {
			b.Fatal(err)
		}
		sessions := []*trace.Session{s}
		analysis.TriggerAnalysis(sessions, trace.DefaultPerceptibleThreshold, false, analysis.TriggerOptions{})
		analysis.LocationAnalysis(sessions, trace.DefaultPerceptibleThreshold, false, nil)
		analysis.CauseAnalysis(sessions, trace.DefaultPerceptibleThreshold, false)
	}
}

// BenchmarkSessionTimeline renders the whole-session timeline.
func BenchmarkSessionTimeline(b *testing.B) {
	b.ReportAllocs()
	s := benchSuite().Sessions[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(viz.Timeline(s, viz.TimelineOptions{})) == 0 {
			b.Fatal("empty timeline")
		}
	}
	b.ReportMetric(float64(len(s.Episodes)), "episodes")
}

// --- Analysis engine (internal/engine, fused single-pass pipeline) ---

// BenchmarkAnalyzeSuite measures the full per-application analysis —
// classification, overview, and all four figure analyses on both
// populations — which the engine computes in one traversal per
// episode. This is the headline number for the paper's "7.5 hours of
// sessions in 15 minutes" claim.
func BenchmarkAnalyzeSuite(b *testing.B) {
	b.ReportAllocs()
	suite := benchSuite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := report.AnalyzeSuite(suite, trace.DefaultPerceptibleThreshold)
		if a.Overview.Traced == 0 || len(a.Pooled.Patterns) == 0 {
			b.Fatal("empty analysis")
		}
	}
	b.ReportMetric(benchEpisodes(suite), "episodes")
}

// BenchmarkAnalyzeSuiteSelfProfiled is BenchmarkAnalyzeSuite with
// self-profiling on: an obs.Trace on the context records every phase
// span, and the iterations' spans are encoded as a LiLa v2 self-trace
// after the timer stops. Compare against BenchmarkAnalyzeSuite to pin
// the enabled-path overhead (budget: < 5%); the disabled path staying
// zero-alloc is guarded by obs.TestDisabledPathDoesNotAllocate.
func BenchmarkAnalyzeSuiteSelfProfiled(b *testing.B) {
	b.ReportAllocs()
	suite := benchSuite()
	tr := obs.NewTrace()
	ctx := obs.WithTrace(context.Background(), tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := report.AnalyzeSuiteContext(ctx, suite, trace.DefaultPerceptibleThreshold)
		if a.Overview.Traced == 0 || len(a.Pooled.Patterns) == 0 {
			b.Fatal("empty analysis")
		}
	}
	b.StopTimer()
	data, err := selftrace.Encode(tr, selftrace.Options{App: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(data)), "selftrace-bytes")
	b.ReportMetric(benchEpisodes(suite), "episodes")
}

// BenchmarkClassifyParallel measures hash-first classification on a
// workload large enough to span several shards (all 14 applications'
// sessions pooled), exercising the chunked build-and-merge path.
func BenchmarkClassifyParallel(b *testing.B) {
	b.ReportAllocs()
	var sessions []*trace.Session
	for _, a := range benchStudy().Apps {
		sessions = append(sessions, a.Suite.Sessions...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := patterns.Classify(sessions, patterns.Options{})
		if len(set.Patterns) == 0 {
			b.Fatal("no patterns")
		}
	}
	n := 0
	for _, s := range sessions {
		n += len(s.Episodes)
	}
	b.ReportMetric(float64(n), "episodes")
}
