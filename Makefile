# Build/test entry points. `make check` is the tier-1 gate; `make race`
# exercises the concurrent packages (the analysis engine's worker
# pools, sharded classification, the study fan-out, and the lagd job
# supervisor) under the race detector. `make chaos` is the robustness
# tier: the fault-injection suites (salvage decoding, lenient rebuild,
# engine panic containment, checkpoint-store corruption and stalled
# reads, service shedding/retry/shutdown, CLI kill-and-resume, and the
# multi-node distributed-study suite under network fault injection,
# and the live-ingest chaos suite: flaky upload swarms, kill-and-resume
# over the ingest journal, budget eviction, and drain) plus a fuzz
# smoke pass over the salvage decoders and the streaming ingest
# endpoint. `make profile` runs the
# engine benchmark under the CPU and heap profilers and prints the
# top-10 hot spots from each.

GO ?= go
PROFILE_DIR ?= profiles
FUZZTIME ?= 30s

.PHONY: build test check race chaos vet bench profile

build:
	$(GO) build ./...

test:
	$(GO) test ./...

check: build test

race:
	$(GO) test -race ./internal/engine ./internal/report ./internal/patterns ./internal/obs \
		./internal/serve ./internal/checkpoint ./internal/intern ./internal/lila ./internal/dist \
		./internal/ingest

chaos:
	$(GO) test ./internal/faultinject ./internal/lila ./internal/treebuild \
		-run 'Salvage|Lenient|Robust|Fault|Panic|Budget'
	$(GO) test ./internal/engine ./internal/report -run 'Robust|Panic|Cancel|Damaged|Salvaged|Resume|TimedOut' -race
	$(GO) test ./internal/checkpoint ./internal/serve \
		-run 'Fault|Corrupt|Truncat|Orphan|Resume|Shed|Panic|Retry|Shutdown|Deadline|Shard|Drain' -race
	$(GO) test ./internal/dist \
		-run 'Golden|Hedge|Eject|Degrad|Itemized|Resume|Backoff|Pool|Metrics' -race
	$(GO) test ./internal/ingest \
		-run 'Chaos|Golden|Journal|Shed|Drain|Budget|Idle|Duplicate|Garbage|Degrad' -race
	$(GO) test -run TestCLIFaultTolerance .
	$(GO) test -run TestCLICheckpointKillResume .
	$(GO) test -run TestCLIConvertGolden .
	$(GO) test -run TestCLISelfProfile .
	$(GO) test ./internal/lila -run '^$$' -fuzz FuzzSalvageText -fuzztime $(FUZZTIME)
	$(GO) test ./internal/lila -run '^$$' -fuzz 'FuzzSalvageBinary$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/lila -run '^$$' -fuzz FuzzSalvageBinaryV2 -fuzztime $(FUZZTIME)
	$(GO) test ./internal/lila -run '^$$' -fuzz 'FuzzReader$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ingest -run '^$$' -fuzz FuzzIngestStream -fuzztime $(FUZZTIME) -fuzzminimizetime 2s

vet:
	$(GO) vet ./...

bench:
	./scripts/bench.sh

profile:
	mkdir -p $(PROFILE_DIR)
	$(GO) test -run '^$$' -bench BenchmarkAnalyzeSuite -benchtime 2s \
		-cpuprofile $(PROFILE_DIR)/cpu.out -memprofile $(PROFILE_DIR)/mem.out \
		-o $(PROFILE_DIR)/bench.test .
	@echo "== top-10 CPU =="
	$(GO) tool pprof -top -nodecount=10 $(PROFILE_DIR)/bench.test $(PROFILE_DIR)/cpu.out
	@echo "== top-10 allocations (alloc_space) =="
	$(GO) tool pprof -top -nodecount=10 -sample_index=alloc_space $(PROFILE_DIR)/bench.test $(PROFILE_DIR)/mem.out
