# Build/test entry points. `make check` is the tier-1 gate; `make race`
# exercises the concurrent packages (the analysis engine's worker
# pools, sharded classification, and the study fan-out) under the race
# detector.

GO ?= go

.PHONY: build test check race bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

check: build test

race:
	$(GO) test -race ./internal/engine ./internal/report ./internal/patterns

bench:
	./scripts/bench.sh
