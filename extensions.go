package lagalyzer

// Facade exports for the reproduction's extension features: the
// session trace timeline (LiLa Viewer's visualization, which the
// paper's episode sketches extend), single-pass streaming analysis
// (lifting the Section V all-in-memory limitation), perceptibility
// threshold sensitivity (the intro's disagreeing HCI literature), and
// profiler-perturbation modeling (the paper's deferred future work).

import (
	"io"

	"lagalyzer/internal/analysis"
	"lagalyzer/internal/lila"
	"lagalyzer/internal/sim"
	"lagalyzer/internal/stream"
	"lagalyzer/internal/viz"
)

// TimelineSVG renders a whole-session trace timeline: every traced
// episode as a bar (log-duration height, trigger color) on the session
// time axis, with GC marks and the perceptibility threshold line.
func TimelineSVG(s *Session) string {
	return viz.Timeline(s, viz.TimelineOptions{})
}

// TimelineText renders the terminal form of the session timeline.
func TimelineText(s *Session, columns int) string {
	return viz.TimelineText(s, columns)
}

// StreamStats is the result of a single-pass streaming analysis; see
// AnalyzeStream.
type StreamStats = stream.Stats

// AnalyzeStream computes overview statistics, triggers, GC/native
// fractions, cause shares, and concurrency in one pass over a trace,
// in O(stack depth) memory — without materializing the session.
// threshold 0 means the paper's 100 ms.
func AnalyzeStream(r io.Reader, threshold Dur) (*StreamStats, error) {
	lr, err := lila.NewReader(r)
	if err != nil {
		return nil, err
	}
	return stream.Analyze(lr, threshold)
}

// ThresholdPoint reports perceptible-episode statistics at one
// candidate perceptibility threshold.
type ThresholdPoint = analysis.ThresholdPoint

// LiteratureThresholds are the perceptibility thresholds of the HCI
// literature the paper cites: 100 ms (Shneiderman), 150 ms and 195 ms
// (Dabrowski & Munson, keyboard and mouse), 225 ms (MacKenzie & Ware).
func LiteratureThresholds() []Dur {
	out := make([]Dur, len(analysis.LiteratureThresholds))
	copy(out, analysis.LiteratureThresholds)
	return out
}

// ThresholdSweep evaluates perceptible-episode counts across candidate
// thresholds; nil means LiteratureThresholds.
func ThresholdSweep(sessions []*Session, thresholds []Dur) []ThresholdPoint {
	return analysis.ThresholdSweep(sessions, thresholds)
}

// Perturbation models the profiler's own measurement overhead
// (instrumentation slowdown, profiler allocations); attach one to a
// SimConfig to study measurement perturbation.
type Perturbation = sim.Perturbation
