package lagalyzer

import (
	"bytes"
	"strings"
	"testing"
)

// TestFacadeEndToEnd exercises the public API the way the README's
// quickstart does: simulate → serialize → reload → classify → analyze
// → visualize.
func TestFacadeEndToEnd(t *testing.T) {
	profile, err := ProfileByName("CrosswordSage")
	if err != nil {
		t.Fatal(err)
	}
	session, err := Simulate(SimConfig{Profile: profile, Seed: 5, SessionSeconds: 30})
	if err != nil {
		t.Fatal(err)
	}
	if session.App != "CrosswordSage" || len(session.Episodes) == 0 {
		t.Fatalf("unexpected session: app=%q episodes=%d", session.App, len(session.Episodes))
	}

	// Round trip through the binary trace format.
	var buf bytes.Buffer
	if err := WriteSession(&buf, FormatBinary, session); err != nil {
		t.Fatal(err)
	}
	reloaded, err := ReadSession(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(reloaded.Episodes) != len(session.Episodes) {
		t.Fatalf("round trip lost episodes: %d vs %d", len(reloaded.Episodes), len(session.Episodes))
	}

	// Classification and analyses.
	set := Classify([]*Session{reloaded}, PatternOptions{})
	if len(set.Patterns) == 0 {
		t.Fatal("no patterns")
	}
	trig := Triggers([]*Session{reloaded}, PerceptibleThreshold, false)
	if trig.Total != len(reloaded.Episodes) {
		t.Errorf("trigger total = %d, want %d", trig.Total, len(reloaded.Episodes))
	}
	loc := Location([]*Session{reloaded}, PerceptibleThreshold, false)
	if loc.App+loc.Library == 0 {
		t.Error("location analysis found no Java samples")
	}
	if avg, n := Concurrency([]*Session{reloaded}, PerceptibleThreshold, false); n == 0 || avg <= 0 {
		t.Errorf("concurrency = %v over %d samples", avg, n)
	}
	if c := Causes([]*Session{reloaded}, PerceptibleThreshold, false); c.Samples == 0 {
		t.Error("cause analysis found no samples")
	}
	o := OverviewOf(&Suite{App: session.App, Sessions: []*Session{reloaded}}, PerceptibleThreshold)
	if o.Traced == 0 || o.E2ESeconds == 0 {
		t.Errorf("overview empty: %+v", o)
	}

	// Visualization and browsing.
	e := set.Patterns[0].First().Episode
	if svg := SketchSVG(reloaded, e); !strings.Contains(svg, "<svg") {
		t.Error("sketch SVG malformed")
	}
	if txt := SketchText(reloaded, e); !strings.Contains(txt, "dispatch") {
		t.Error("sketch text malformed")
	}
	b := NewBrowser(set, 0)
	if b.Len() != len(set.Patterns) {
		t.Errorf("browser sees %d patterns, want %d", b.Len(), len(set.Patterns))
	}
}

func TestFacadeProfiles(t *testing.T) {
	if got := len(Profiles()); got != 14 {
		t.Errorf("Profiles() = %d, want 14", got)
	}
	if _, err := ProfileByName("NoSuchApp"); err == nil {
		t.Error("ProfileByName accepted an unknown app")
	}
}

func TestFacadeConstantsWired(t *testing.T) {
	if PerceptibleThreshold != Ms(100) {
		t.Errorf("PerceptibleThreshold = %v", PerceptibleThreshold)
	}
	if FilterThreshold != Ms(3) {
		t.Errorf("FilterThreshold = %v", FilterThreshold)
	}
	if KindGC.String() != "gc" || StateSleeping.String() != "sleeping" {
		t.Error("kind/state constants miswired")
	}
	if OccAlways.String() != "always" || TriggerOutput.String() != "output" {
		t.Error("occurrence/trigger constants miswired")
	}
}

func TestFacadeTriggerOf(t *testing.T) {
	root := &Interval{Kind: KindDispatch, Start: 0, End: Time(Ms(200))}
	async := &Interval{Kind: KindAsync, Class: "q.E", Method: "dispatch", Start: 0, End: Time(Ms(150))}
	async.Children = []*Interval{{Kind: KindPaint, Class: "p.P", Method: "paint", Start: Time(Ms(10)), End: Time(Ms(100))}}
	root.Children = []*Interval{async}
	e := &Episode{Root: root}
	if got := TriggerOf(e); got != TriggerOutput {
		t.Errorf("TriggerOf = %v, want output (repaint-manager reclassification)", got)
	}
	if Fingerprint(e, PatternOptions{}) == "" {
		t.Error("empty fingerprint")
	}
}

func TestFacadeExtensions(t *testing.T) {
	profile, err := ProfileByName("FreeMind")
	if err != nil {
		t.Fatal(err)
	}
	session, err := Simulate(SimConfig{Profile: profile, Seed: 6, SessionSeconds: 30})
	if err != nil {
		t.Fatal(err)
	}

	if svg := TimelineSVG(session); !strings.Contains(svg, "<svg") {
		t.Error("timeline SVG malformed")
	}
	if txt := TimelineText(session, 80); !strings.Contains(txt, "FreeMind") {
		t.Error("timeline text malformed")
	}

	var buf bytes.Buffer
	if err := WriteSession(&buf, FormatBinary, session); err != nil {
		t.Fatal(err)
	}
	st, err := AnalyzeStream(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Episodes != len(session.Episodes) {
		t.Errorf("stream episodes = %d, want %d", st.Episodes, len(session.Episodes))
	}

	ths := LiteratureThresholds()
	if len(ths) != 4 || ths[0] != Ms(100) {
		t.Errorf("literature thresholds = %v", ths)
	}
	// Mutating the copy must not affect the canonical slice.
	ths[0] = Ms(1)
	if LiteratureThresholds()[0] != Ms(100) {
		t.Error("LiteratureThresholds returned shared backing storage")
	}

	sweep := ThresholdSweep([]*Session{session}, nil)
	if len(sweep) != 4 {
		t.Fatalf("sweep has %d points", len(sweep))
	}
	for i := 1; i < len(sweep); i++ {
		if sweep[i].Episodes > sweep[i-1].Episodes {
			t.Error("sweep not monotone")
		}
	}

	// Perturbation through the facade.
	perturbed, err := Simulate(SimConfig{Profile: profile, Seed: 6, SessionSeconds: 30,
		Perturbation: &Perturbation{SlowdownFactor: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if perturbed.InEpisodeFrac() <= session.InEpisodeFrac() {
		t.Error("perturbation slowdown had no effect")
	}
}
