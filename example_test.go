package lagalyzer_test

import (
	"fmt"

	"lagalyzer"
)

// buildSession assembles a tiny two-episode session by hand: a fast
// click and a slow paint that contains a garbage collection.
func buildSession() *lagalyzer.Session {
	ms := func(v float64) lagalyzer.Time { return lagalyzer.Time(lagalyzer.Ms(v)) }

	click := &lagalyzer.Interval{Kind: lagalyzer.KindDispatch, Start: ms(0), End: ms(30)}
	click.Children = []*lagalyzer.Interval{{
		Kind: lagalyzer.KindListener, Class: "app.Button", Method: "onClick",
		Start: ms(0), End: ms(25),
	}}

	repaint := &lagalyzer.Interval{Kind: lagalyzer.KindDispatch, Start: ms(1000), End: ms(1450)}
	paint := &lagalyzer.Interval{
		Kind: lagalyzer.KindPaint, Class: "app.Canvas", Method: "paint",
		Start: ms(1000), End: ms(1430),
	}
	paint.Children = []*lagalyzer.Interval{{
		Kind: lagalyzer.KindGC, Start: ms(1100), End: ms(1250), Major: true,
	}}
	repaint.Children = []*lagalyzer.Interval{paint}

	s := &lagalyzer.Session{
		App: "Demo", GUIThread: 1,
		Start: 0, End: lagalyzer.Time(5 * 1e9),
		Episodes: []*lagalyzer.Episode{
			{Index: 0, Thread: 1, Root: click},
			{Index: 1, Thread: 1, Root: repaint},
		},
		FilterThreshold: lagalyzer.FilterThreshold,
	}
	return s
}

// ExampleClassify groups episodes into structural patterns and shows
// the pattern browser's key statistics.
func ExampleClassify() {
	s := buildSession()
	set := lagalyzer.Classify([]*lagalyzer.Session{s}, lagalyzer.PatternOptions{})
	for _, p := range set.Patterns {
		fmt.Printf("%d episode(s), %s, gc in %.0f%%: %s\n",
			p.Count(), p.Occurrence(lagalyzer.PerceptibleThreshold), p.GCFrac()*100, p.Canon)
	}
	// Output:
	// 1 episode(s), never, gc in 0%: dispatch(listener[app.Button.onClick])
	// 1 episode(s), always, gc in 100%: dispatch(paint[app.Canvas.paint])
}

// ExampleTriggerOf classifies what initiated an episode.
func ExampleTriggerOf() {
	s := buildSession()
	for _, e := range s.Episodes {
		fmt.Printf("episode %d (%v): %s\n", e.Index, e.Dur(), lagalyzer.TriggerOf(e))
	}
	// Output:
	// episode 0 (30.0ms): input
	// episode 1 (450.0ms): output
}

// ExampleLocation attributes episode time to GC and native code from
// the interval trees.
func ExampleLocation() {
	s := buildSession()
	loc := lagalyzer.Location([]*lagalyzer.Session{s},
		lagalyzer.PerceptibleThreshold, true /* perceptible episodes only */)
	fmt.Printf("of perceptible lag, %.1f%% was stop-the-world collection\n", loc.GC*100)
	// Output:
	// of perceptible lag, 33.3% was stop-the-world collection
}

// ExampleThresholdSweep shows how the perceptible-episode count moves
// across the HCI literature's thresholds.
func ExampleThresholdSweep() {
	s := buildSession()
	for _, p := range lagalyzer.ThresholdSweep([]*lagalyzer.Session{s}, nil) {
		fmt.Printf(">=%v: %d episode(s)\n", p.Threshold, p.Episodes)
	}
	// Output:
	// >=100.0ms: 1 episode(s)
	// >=150.0ms: 1 episode(s)
	// >=195.0ms: 1 episode(s)
	// >=225.0ms: 1 episode(s)
}

// ExampleFingerprint shows the canonical structural form behind
// pattern equality: timing and GC intervals are excluded.
func ExampleFingerprint() {
	s := buildSession()
	fmt.Println(lagalyzer.Fingerprint(s.Episodes[1], lagalyzer.PatternOptions{}))
	fmt.Println(lagalyzer.Fingerprint(s.Episodes[1], lagalyzer.PatternOptions{IncludeGC: true}))
	// Output:
	// dispatch(paint[app.Canvas.paint])
	// dispatch(paint[app.Canvas.paint](gc))
}
